//! In-tree tracing + metrics substrate (hermetic, no registry deps).
//!
//! Three pieces, mirroring what `tracing` + `metrics` + a Chrome exporter
//! would otherwise provide:
//!
//! 1. **Spans** — [`span`] returns an RAII guard carrying a monotonic
//!    [`Instant`]; guards maintain a thread-local parent stack (so every
//!    event knows its depth and parent), and completed spans are buffered
//!    in per-thread ring buffers that drain into a global collector when
//!    full. Pool worker threads are labeled with their worker index.
//! 2. **Counters** — [`Counter`] values registered by name: monotonic
//!    adds ([`Counter::add`]) or gauge-style sets ([`Counter::set`]), all
//!    relaxed atomics. The subsystem counters every crate shares (FLOPs,
//!    disk/cache bytes, pool task/steal/park counts, pagecache hits and
//!    misses, simplex iterations, branch-and-bound nodes) are predeclared
//!    statics; ad-hoc names (e.g. per-worker) intern through [`counter`].
//! 3. **Exporters** — [`export_to`] writes Chrome trace-event JSON
//!    (loadable in Perfetto / `chrome://tracing`) via the in-tree
//!    [`crate::json`] module; [`summary`] aggregates per-span-name
//!    count/total/mean/max for terminal tables; [`prometheus_text`]
//!    renders counters, gauges, and histograms in the Prometheus text
//!    exposition format for live scraping.
//!
//! Beyond counters there are [`Gauge`]s (set/add of an `i64` level:
//! queue depths, resident bytes, parked workers) and log2-bucketed
//! [`Histogram`]s, plus **labeled metric families**: [`counter_with`] /
//! [`histogram_with`] intern one metric per distinct label set (e.g.
//! `serve.request_us{endpoint="predict",tenant="alice"}`), canonicalized
//! by sorting label keys and bounded to [`MAX_LABEL_SETS`] sets per base
//! name — overflow label sets collapse into a `_other` series so a
//! hostile tenant-id stream cannot grow memory without bound.
//!
//! Collection is **off by default**. Two independent switches exist:
//! *tracing* (span buffering toward a Chrome trace, gated by the
//! `NAUTILUS_TRACE` environment variable — see [`init_from_env`] — or
//! [`enable`]/[`enable_to`]) and *metrics* (counter/gauge/histogram
//! recording, additionally switchable alone via [`enable_metrics`] so a
//! long-running server can serve `/metrics` without accumulating span
//! events). [`enable`] turns both on; [`disable`] turns both off. The
//! disabled path of every instrumentation site is a single relaxed atomic
//! load; no clocks are read and no allocation happens, so instrumented
//! hot loops cost the same as untraced ones (the `telemetry` bench group
//! gates this).
//!
//! Span naming convention: `<subsystem>.<operation>` with the crate-ish
//! subsystem as the category — e.g. `("core", "cycle.train")`,
//! `("store", "store.read_all")`, `("milp", "milp.solve")`.

use crate::json::Json;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity (events) before draining into the collector.
const RING_CAP: usize = 4096;

/// Span-collection (tracing) switch. Every span site loads this once
/// (relaxed) and bails when false — that load *is* the disabled-path cost.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Metric-recording switch (counters/gauges/histograms). Independent of
/// [`ENABLED`] so a server can expose live `/metrics` without buffering
/// span events; [`enable`] sets both, [`enable_metrics`] just this one.
static METRICS: AtomicBool = AtomicBool::new(false);

/// True when span (trace) collection is active.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when metric recording (counters/gauges/histograms) is active.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// A finished span, in collector form.
#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_us: u64,
    dur_us: u64,
    depth: u32,
    parent: Option<&'static str>,
}

/// One thread's shared ring of finished spans. The owning thread locks it
/// briefly per event (uncontended); the exporter locks it to snapshot.
/// Registered in the global state so events survive thread exit and are
/// visible from live pool workers at export time.
struct ThreadRing {
    tid: u64,
    label: Mutex<String>,
    events: Mutex<Vec<Event>>,
}

struct Global {
    epoch: Instant,
    /// Events drained out of full thread rings.
    drained: Mutex<Vec<Event>>,
    /// Live (and retired) per-thread rings.
    threads: Mutex<Vec<Arc<ThreadRing>>>,
    /// Registered counters, in registration order.
    counters: Mutex<Vec<&'static Counter>>,
    /// Interned dynamically named counters (name → leaked static).
    interned: Mutex<Vec<(&'static str, &'static Counter)>>,
    /// Registered histograms, in registration order.
    histograms: Mutex<Vec<&'static Histogram>>,
    /// Interned dynamically named histograms (name → leaked static).
    interned_hists: Mutex<Vec<(&'static str, &'static Histogram)>>,
    /// Registered gauges, in registration order.
    gauges: Mutex<Vec<&'static Gauge>>,
    /// Interned dynamically named gauges (name → leaked static).
    interned_gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    next_tid: AtomicU64,
    /// Trace-file destination configured via env/`enable_to`.
    out_path: Mutex<Option<PathBuf>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: Instant::now(),
        drained: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        interned: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        interned_hists: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        interned_gauges: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(1),
        out_path: Mutex::new(None),
    })
}

fn now_us() -> u64 {
    global().epoch.elapsed().as_micros() as u64
}

/// Worker-index provider installed by `pool` so thread labels can say
/// `pool-worker-N` without a dependency cycle.
static WORKER_INDEX_FN: OnceLock<fn() -> Option<usize>> = OnceLock::new();

/// Installs the pool's worker-index accessor (called once by the pool).
pub fn set_worker_index_fn(f: fn() -> Option<usize>) {
    let _ = WORKER_INDEX_FN.set(f);
}

struct LocalState {
    ring: Arc<ThreadRing>,
    /// Parent stack: names of the currently open spans on this thread.
    stack: RefCell<Vec<&'static str>>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalState>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&LocalState) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let g = global();
            let tid = g.next_tid.fetch_add(1, Ordering::Relaxed);
            let worker = WORKER_INDEX_FN.get().and_then(|f| f());
            let label = match worker {
                Some(i) => format!("pool-worker-{i}"),
                None => std::thread::current()
                    .name()
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!("thread-{tid}")),
            };
            let ring = Arc::new(ThreadRing {
                tid,
                label: Mutex::new(label),
                events: Mutex::new(Vec::new()),
            });
            g.threads.lock().unwrap().push(ring.clone());
            *slot = Some(LocalState { ring, stack: RefCell::new(Vec::new()) });
        }
        f(slot.as_ref().expect("local state initialized"))
    })
}

fn record_event(name: &'static str, cat: &'static str, start_us: u64, end_us: u64) {
    with_local(|local| {
        let mut stack = local.stack.borrow_mut();
        // This span's name sits on top (pushed at creation) — pop it; the
        // remaining top is the parent.
        if stack.last() == Some(&name) {
            stack.pop();
        }
        let depth = stack.len() as u32;
        let parent = stack.last().copied();
        drop(stack);
        let ev = Event {
            name,
            cat,
            tid: local.ring.tid,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            depth,
            parent,
        };
        let mut events = local.ring.events.lock().unwrap();
        events.push(ev);
        if events.len() >= RING_CAP {
            let full = std::mem::take(&mut *events);
            drop(events);
            global().drained.lock().unwrap().extend(full);
        }
    });
}

/// RAII span guard returned by [`span`]. When collection is disabled the
/// guard is inert (no clock read, no thread-local touch).
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
}

/// Opens a span named `name` under category (subsystem) `cat`.
///
/// Cheap when disabled: one relaxed atomic load, then an inert guard.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    let start_us = now_us();
    with_local(|local| local.stack.borrow_mut().push(name));
    Span { data: Some(SpanData { name, cat, start_us }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            record_event(data.name, data.cat, data.start_us, now_us());
        }
    }
}

/// A span that **always** measures wall time (one `Instant` read at open
/// and close) and reports it to the caller, recording a trace event only
/// when collection is enabled. For the handful of coarse per-cycle phases
/// whose duration feeds reports ([`crate::bench`]-independent), not for
/// hot loops — use [`span`] there.
pub struct TimedSpan {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    /// Participates in the trace (captured at open so a mid-span toggle
    /// cannot unbalance the parent stack).
    emit: bool,
    start_us: u64,
    finished: bool,
}

/// Opens a [`TimedSpan`].
pub fn timed_span(cat: &'static str, name: &'static str) -> TimedSpan {
    let emit = enabled();
    let start_us = if emit {
        let us = now_us();
        with_local(|local| local.stack.borrow_mut().push(name));
        us
    } else {
        0
    };
    TimedSpan { name, cat, start: Instant::now(), emit, start_us, finished: false }
}

impl TimedSpan {
    /// Elapsed seconds so far, without closing the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Closes the span, recording it when collection is enabled, and
    /// returns its wall-clock duration in seconds.
    pub fn finish(mut self) -> f64 {
        self.close();
        self.start.elapsed().as_secs_f64()
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.emit {
            record_event(self.name, self.cat, self.start_us, now_us());
        }
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        self.close();
    }
}

/// A named metric: monotonic counter or gauge, relaxed atomics throughout.
/// Declare as a `static` and bump with [`Counter::add`]; the first touch
/// while collection is enabled registers it for export.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter; `const` so it can back a `static`.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while metric recording is disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        self.ensure_registered();
    }

    /// Gauge-style overwrite (no-op while metric recording is disabled).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        self.ensure_registered();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            global().counters.lock().unwrap().push(self);
        }
    }
}

/// A named level metric: an `i64` that can go up and down (queue depths,
/// resident-variant counts, cache occupancy, parked workers). Same
/// lifecycle as [`Counter`]: declare as a `static` (or intern via
/// [`gauge`]), relaxed atomics throughout, no-op while metric recording
/// is disabled, first touch while enabled registers it for export.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge; `const` so it can back a `static`.
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, value: AtomicI64::new(0), registered: AtomicBool::new(false) }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrites the level (no-op while metric recording is disabled).
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !metrics_enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        self.ensure_registered();
    }

    /// Adds `delta` (may be negative; no-op while metric recording is
    /// disabled).
    #[inline]
    pub fn add(&'static self, delta: i64) {
        if !metrics_enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
        self.ensure_registered();
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            global().gauges.lock().unwrap().push(self);
        }
    }
}

macro_rules! declare_gauges {
    ($($(#[$doc:meta])* $ident:ident => $name:literal;)*) => {
        $($(#[$doc])* pub static $ident: Gauge = Gauge::new($name);)*
        /// Every predeclared gauge, so exports list them (zeros included)
        /// even when a subsystem never ran.
        fn predeclared_gauges() -> Vec<&'static Gauge> {
            vec![$(&$ident),*]
        }
    };
}

declare_gauges! {
    /// Accepted connections waiting in the server's admission queue.
    SERVE_CONN_QUEUE_DEPTH => "serve.conn_queue_depth";
    /// Requests waiting in the micro-batcher's queue.
    SERVE_BATCH_QUEUE_DEPTH => "serve.batch_queue_depth";
    /// Variant deltas currently resident in the model registry.
    SERVE_RESIDENT_VARIANTS => "serve.resident_variants";
    /// Bytes of evicted variant deltas held by the on-disk delta store.
    SERVE_DELTA_STORE_BYTES => "serve.delta_store_bytes";
    /// Bytes currently occupied in the modeled page cache.
    PAGECACHE_USED_BYTES => "pagecache.used_bytes";
    /// Pool workers currently parked waiting for work.
    POOL_PARKED_WORKERS => "pool.parked_workers";
    /// Measured sequential-read bandwidth from the last I/O calibration
    /// probe, bytes/s (0 until a probe has run).
    CALIBRATED_SEQ_READ_BPS => "calibrate.seq_read_bytes_per_sec";
    /// Measured random-read bandwidth from the last I/O calibration
    /// probe, bytes/s.
    CALIBRATED_RAND_READ_BPS => "calibrate.rand_read_bytes_per_sec";
    /// Measured write bandwidth from the last I/O calibration probe,
    /// bytes/s.
    CALIBRATED_WRITE_BPS => "calibrate.write_bytes_per_sec";
    /// Worker processes the distributed coordinator currently believes
    /// alive (join/leave tracked by heartbeat probes).
    DIST_WORKERS_ALIVE => "dist.workers_alive";
    /// Shards currently dispatched under an active lease.
    DIST_SHARDS_INFLIGHT => "dist.shards_inflight";
    /// Measured coordinator→worker network bandwidth from the last echo
    /// micro-probe, bytes/s (0 until a probe has run).
    CALIBRATED_NET_BPS => "calibrate.net_bytes_per_sec";
}

/// Interns a dynamically named gauge, returning a `'static` handle (the
/// gauge analogue of [`counter`]).
pub fn gauge(name: &str) -> &'static Gauge {
    let mut interned = global().interned_gauges.lock().unwrap();
    if let Some(&(_, g)) = interned.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new(leaked_name)));
    interned.push((leaked_name, g));
    g
}

macro_rules! declare_counters {
    ($($(#[$doc:meta])* $ident:ident => $name:literal;)*) => {
        $($(#[$doc])* pub static $ident: Counter = Counter::new($name);)*
        /// Every predeclared counter, so exports list them (zeros
        /// included) even when a subsystem never ran.
        fn predeclared() -> Vec<&'static Counter> {
            vec![$(&$ident),*]
        }
    };
}

/// Number of log2 buckets: index 0 holds zeros, index `i >= 1` holds
/// samples in `[2^(i-1), 2^i - 1]`, up to index 64 for values with the
/// high bit set.
pub const HIST_BUCKETS: usize = 65;

/// Aggregate view of one [`Histogram`], as used by [`summary_table`] and
/// the trace export. Quantiles interpolate linearly within the containing
/// log2 bucket (capped at the exact recorded max); an empty histogram
/// reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name.
    pub name: &'static str,
    /// Number of recorded samples.
    pub count: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum recorded sample.
    pub max: u64,
}

/// A log2-bucketed histogram of `u64` samples (latencies in µs, batch
/// sizes, ...): 65 relaxed atomic buckets plus exact count/sum/max.
/// Declare as a `static` and feed it with [`Histogram::record`]; like
/// [`Counter`], recording is a no-op while collection is disabled, and
/// the first sample recorded while enabled registers the histogram for
/// [`summary_table`] and the Chrome-trace export.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram; `const` so it can back a `static`.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index for a sample: `0` for zero, otherwise
    /// `floor(log2(v)) + 1` — so bucket `i >= 1` spans `[2^(i-1), 2^i - 1]`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Inclusive lower bound of bucket `i` (the smallest sample that can
    /// land there).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => 1u64 << 63,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records `v` (no-op while metric recording is disabled).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.observe(v);
        self.ensure_registered();
    }

    /// The unconditional recording path (shared by [`Histogram::record`]
    /// and tests): bucket increment plus exact count/sum/max updates, all
    /// relaxed atomics.
    fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A relaxed snapshot of the per-bucket counts. Consumers that need a
    /// self-consistent view (cumulative Prometheus buckets, windowed
    /// delta quantiles) take one snapshot and derive everything from it.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Quantile estimate for `q` in `[0, 1]`: finds the bucket containing
    /// the `ceil(q · count)`-th smallest sample and interpolates linearly
    /// within it (the upper bound is capped at the exact recorded max, so
    /// top-quantile estimates never exceed any observed sample).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        Self::quantile_from_counts(&self.bucket_counts(), self.max.load(Ordering::Relaxed), q)
    }

    /// The quantile estimator over an explicit bucket snapshot — shared
    /// by [`Histogram::quantile`] and consumers computing quantiles over
    /// *windowed deltas* of two snapshots (the serving watchdog).
    pub fn quantile_from_counts(counts: &[u64; HIST_BUCKETS], max: u64, q: f64) -> u64 {
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lower = Self::bucket_lower_bound(i);
                // Cap at the exact max: tighter than the bucket bound for
                // the top bucket, exact whenever every sample in the
                // bucket equals the max. `.max(lower)` guards the racy
                // case where `max` lags a concurrent record.
                let upper = Self::bucket_upper_bound(i).min(max).max(lower);
                let frac = (target - seen) as f64 / c as f64;
                // Saturate + clamp: `(upper - lower) as f64` can round up
                // past the true width for the widest buckets.
                let step = ((upper - lower) as f64 * frac).round() as u64;
                return lower.saturating_add(step).min(upper);
            }
            seen += c;
        }
        max
    }

    /// Aggregated view (count, p50/p95/p99, exact max); all zeros when no
    /// samples were recorded.
    pub fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            name: self.name,
            count: self.count(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            global().histograms.lock().unwrap().push(self);
        }
    }
}

macro_rules! declare_histograms {
    ($($(#[$doc:meta])* $ident:ident => $name:literal;)*) => {
        $($(#[$doc])* pub static $ident: Histogram = Histogram::new($name);)*
        /// Every predeclared histogram, so exports list them (zeros
        /// included) even when a subsystem never ran.
        fn predeclared_histograms() -> Vec<&'static Histogram> {
            vec![$(&$ident),*]
        }
    };
}

declare_histograms! {
    /// End-to-end serving latency of one HTTP prediction request, µs.
    SERVE_REQUEST_US => "serve.request_us";
    /// Latency of one micro-batch forward (collect → forward → scatter), µs.
    SERVE_BATCH_US => "serve.batch_us";
}

/// Interns a dynamically named histogram, returning a `'static` handle
/// (the histogram analogue of [`counter`]).
pub fn histogram(name: &str) -> &'static Histogram {
    let mut interned = global().interned_hists.lock().unwrap();
    if let Some(&(_, h)) = interned.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(leaked_name)));
    interned.push((leaked_name, h));
    h
}

declare_counters! {
    /// Prediction requests answered by the serving front-end.
    SERVE_REQUESTS => "serve.requests";
    /// Requests shed with 503 (admission queue full / endpoint at cap).
    SERVE_SHED => "serve.shed";
    /// Micro-batches executed by the serving batcher.
    SERVE_BATCHES => "serve.batches";
    /// Records carried by those micro-batches (mean batch size =
    /// `serve.batch_size / serve.batches`).
    SERVE_BATCH_RECORDS => "serve.batch_size";
    /// Variant deltas evicted from the registry to the delta store.
    SERVE_EVICTIONS => "serve.evictions";
    /// Variant deltas faulted back in from the delta store.
    SERVE_FAULT_INS => "serve.fault_ins";
    /// Records served through a shared base-trunk forward pass alongside
    /// at least one other tenant's records.
    SERVE_TRUNK_SHARED_RECORDS => "serve.trunk_shared_records";
    /// FLOPs executed/charged by the backend.
    FLOPS => "flops";
    /// Bytes read from disk (page-cache misses).
    DISK_READ_BYTES => "disk_read_bytes";
    /// Bytes served from the page cache.
    CACHED_READ_BYTES => "cached_read_bytes";
    /// Bytes written to disk.
    DISK_WRITE_BYTES => "disk_write_bytes";
    /// Tasks submitted to the shared thread pool.
    POOL_TASKS => "pool.tasks";
    /// Successful steals from a peer worker's deque.
    POOL_STEALS => "pool.steals";
    /// Times a pool worker parked waiting for work.
    POOL_PARKS => "pool.parks";
    /// Page-cache read hits (object count).
    PAGECACHE_HITS => "pagecache.hits";
    /// Page-cache read misses (object count).
    PAGECACHE_MISSES => "pagecache.misses";
    /// Prefetched generations that were fully resident when the trainer
    /// asked for them (compute fully overlapped the I/O).
    PREFETCH_HITS => "prefetch.hits";
    /// Prefetched generations the trainer had to block on (I/O slower
    /// than compute; the wait shows up as a `prefetch.wait` span).
    PREFETCH_STALLS => "prefetch.stalls";
    /// Chunk writes deferred to the write-behind I/O threads.
    WRITE_BEHIND_CHUNKS => "write_behind.chunks";
    /// Gauge: the disk-throughput constant (bytes/s) the MILP consumed on
    /// its most recent solve — measured when I/O calibration is on, the
    /// static default otherwise.
    PLANNER_DISK_BPS => "planner.disk_bytes_per_sec";
    /// Bytes copied into packed GEMM A/B panels (and im2col columns).
    GEMM_PACK_BYTES => "gemm.pack_bytes";
    /// Register-tile microkernel invocations in the blocked GEMM.
    GEMM_MICROKERNEL_CALLS => "gemm.microkernel_calls";
    /// int8 row-quantized GEMM invocations (the serving quant path).
    QGEMM_CALLS => "qgemm.calls";
    /// Output rows produced by the int8 row-quantized GEMM.
    QGEMM_ROWS => "qgemm.rows";
    /// Scratch-arena takes served by a recycled buffer.
    SCRATCH_HITS => "scratch.hits";
    /// Scratch-arena takes that fell through to a fresh allocation.
    SCRATCH_MISSES => "scratch.misses";
    /// Simplex pivot iterations across all LP solves.
    SIMPLEX_ITERATIONS => "simplex.iterations";
    /// Branch-and-bound nodes explored across all MILP solves.
    BB_NODES => "bb.nodes";
    /// Shard dispatch retries by the distributed coordinator (failed or
    /// timed-out attempts that were requeued with backoff).
    DIST_RETRIES => "dist.retries";
    /// Shard leases that expired without a worker reply and were
    /// reassigned.
    DIST_LEASE_TIMEOUTS => "dist.lease_timeouts";
    /// Shards completed successfully by remote workers.
    DIST_SHARDS_DONE => "dist.shards_done";
    /// Gauge: the network-throughput constant (bytes/s) the MILP consumed
    /// on its most recent solve — measured when net calibration is on,
    /// 0 (no wire term) otherwise.
    PLANNER_NET_BPS => "planner.net_bytes_per_sec";
}

/// Interns a dynamically named counter (e.g. `pool.worker3.steals`),
/// returning a `'static` handle that can be cached and bumped cheaply.
pub fn counter(name: &str) -> &'static Counter {
    let mut interned = global().interned.lock().unwrap();
    if let Some(&(_, c)) = interned.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let c: &'static Counter = Box::leak(Box::new(Counter::new(leaked_name)));
    interned.push((leaked_name, c));
    c
}

/// Cardinality bound for labeled metric families: at most this many
/// distinct label sets are interned per base name; further new label
/// sets collapse into one overflow series whose label values are all
/// `"_other"`. Keeps an unbounded tenant-id stream from growing the
/// metric table (and the `/metrics` payload) without limit.
pub const MAX_LABEL_SETS: usize = 64;

/// Inert sinks handed out by `*_with` while metric recording is disabled
/// so the disabled path does no formatting, locking, or interning. They
/// carry an empty name and are filtered from every export (recording into
/// them is already a no-op while disabled; the filter covers the race
/// where metrics get enabled between lookup and record).
static DISABLED_COUNTER: Counter = Counter::new("");
static DISABLED_HISTOGRAM: Histogram = Histogram::new("");

fn escape_label_value(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Canonical interned name for `base` + `labels`: keys sorted, values
/// escaped, rendered as `base{k="v",k2="v2"}` — exactly the label block
/// the Prometheus encoder re-emits.
fn labeled_name(base: &str, labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by_key(|&(k, _)| k);
    let mut s = String::with_capacity(base.len() + 16 * sorted.len() + 2);
    s.push_str(base);
    s.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        escape_label_value(&mut s, v);
        s.push('"');
    }
    s.push('}');
    s
}

/// Looks up or creates the interned member for one label set, enforcing
/// the per-family cardinality bound. Generic over the metric kind so
/// counters and histograms share one implementation.
fn intern_labeled<'a, T>(
    interned: &mut Vec<(&'static str, &'static T)>,
    base: &str,
    labels: &[(&str, &str)],
    make: fn(&'static str) -> T,
) -> &'static T {
    let name = labeled_name(base, labels);
    if let Some(&(_, m)) = interned.iter().find(|(n, _)| *n == name) {
        return m;
    }
    let mut prefix = String::with_capacity(base.len() + 1);
    prefix.push_str(base);
    prefix.push('{');
    let live = interned.iter().filter(|(n, _)| n.starts_with(prefix.as_str())).count();
    let final_name = if live >= MAX_LABEL_SETS {
        let capped: Vec<(&str, &str)> = labels.iter().map(|&(k, _)| (k, "_other")).collect();
        let capped_name = labeled_name(base, &capped);
        if let Some(&(_, m)) = interned.iter().find(|(n, _)| *n == capped_name) {
            return m;
        }
        capped_name
    } else {
        name
    };
    let leaked_name: &'static str = Box::leak(final_name.into_boxed_str());
    let m: &'static T = Box::leak(Box::new(make(leaked_name)));
    interned.push((leaked_name, m));
    m
}

/// One member of a labeled counter family, e.g.
/// `counter_with("serve.errors", &[("tenant", id), ("code", "4xx")])`.
/// Label order does not matter (keys are sorted into a canonical name);
/// at most [`MAX_LABEL_SETS`] distinct label sets per base name, beyond
/// which an `_other` overflow series absorbs new sets. Returns an inert
/// unregistered counter while metric recording is disabled.
pub fn counter_with(base: &str, labels: &[(&str, &str)]) -> &'static Counter {
    if !metrics_enabled() {
        return &DISABLED_COUNTER;
    }
    let mut interned = global().interned.lock().unwrap();
    intern_labeled(&mut interned, base, labels, Counter::new)
}

/// One member of a labeled histogram family, e.g.
/// `histogram_with("serve.request_us", &[("endpoint", "predict"), ("tenant", id)])`.
/// Same canonicalization and cardinality bound as [`counter_with`].
pub fn histogram_with(base: &str, labels: &[(&str, &str)]) -> &'static Histogram {
    if !metrics_enabled() {
        return &DISABLED_HISTOGRAM;
    }
    let mut interned = global().interned_hists.lock().unwrap();
    intern_labeled(&mut interned, base, labels, Histogram::new)
}

/// Enables both trace collection and metric recording, without
/// configuring a trace-file destination (export manually via
/// [`export_to`]).
pub fn enable() {
    let _ = global();
    METRICS.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables metric recording only (counters/gauges/histograms — the
/// `/metrics` plane) without buffering span events, so a long-running
/// server pays no trace memory. A later [`enable`] upgrades to full
/// tracing; [`disable`] turns both off.
pub fn enable_metrics() {
    let _ = global();
    METRICS.store(true, Ordering::Relaxed);
}

/// Enables collection and remembers `path` as the trace destination for
/// [`export`].
pub fn enable_to(path: impl Into<PathBuf>) {
    *global().out_path.lock().unwrap() = Some(path.into());
    enable();
}

/// Disables trace collection and metric recording. Already-buffered
/// events and metric values are kept.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    METRICS.store(false, Ordering::Relaxed);
}

/// The configured trace destination, if any.
pub fn trace_path() -> Option<PathBuf> {
    global().out_path.lock().unwrap().clone()
}

/// Reads `NAUTILUS_TRACE`; when set (to the trace output path), enables
/// collection toward it. Idempotent and cheap to call from every session
/// constructor. Returns whether collection is enabled afterwards.
pub fn init_from_env() -> bool {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(path) = std::env::var("NAUTILUS_TRACE") {
            if !path.trim().is_empty() {
                enable_to(path.trim());
            }
        }
    });
    enabled()
}

/// Clears all buffered events and zeroes every registered counter
/// (test/bench hygiene).
pub fn reset() {
    let g = global();
    g.drained.lock().unwrap().clear();
    for ring in g.threads.lock().unwrap().iter() {
        ring.events.lock().unwrap().clear();
    }
    for c in g.counters.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in g.histograms.lock().unwrap().iter() {
        h.reset();
    }
    for gg in g.gauges.lock().unwrap().iter() {
        gg.value.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of everything collected so far (drained + live rings),
/// ordered by start time.
fn snapshot_events() -> Vec<Event> {
    let g = global();
    let mut events = g.drained.lock().unwrap().clone();
    for ring in g.threads.lock().unwrap().iter() {
        events.extend(ring.events.lock().unwrap().iter().cloned());
    }
    events.sort_by_key(|e| (e.tid, e.start_us, std::cmp::Reverse(e.dur_us)));
    events
}

fn registered_counters() -> Vec<&'static Counter> {
    let mut out = predeclared();
    for c in global().counters.lock().unwrap().iter() {
        if !c.name().is_empty() && !out.iter().any(|p| std::ptr::eq(*p, *c)) {
            out.push(c);
        }
    }
    out
}

fn registered_histograms() -> Vec<&'static Histogram> {
    let mut out = predeclared_histograms();
    for h in global().histograms.lock().unwrap().iter() {
        if !h.name().is_empty() && !out.iter().any(|p| std::ptr::eq(*p, *h)) {
            out.push(h);
        }
    }
    out
}

fn registered_gauges() -> Vec<&'static Gauge> {
    let mut out = predeclared_gauges();
    for g in global().gauges.lock().unwrap().iter() {
        if !g.name().is_empty() && !out.iter().any(|p| std::ptr::eq(*p, *g)) {
            out.push(g);
        }
    }
    out
}

/// Every registered gauge with its current level (predeclared ones
/// included), for status endpoints.
pub fn gauge_values() -> Vec<(&'static str, i64)> {
    registered_gauges().iter().map(|g| (g.name(), g.get())).collect()
}

/// Aggregated view of every registered histogram (predeclared ones
/// included, so empty histograms render as all-zero rows).
pub fn histogram_summaries() -> Vec<HistogramSummary> {
    registered_histograms().iter().map(|h| h.summarize()).collect()
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span name (`<subsystem>.<operation>`).
    pub name: &'static str,
    /// Category (subsystem).
    pub cat: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of durations, seconds.
    pub total_secs: f64,
    /// Mean duration, seconds.
    pub mean_secs: f64,
    /// Maximum duration, seconds.
    pub max_secs: f64,
}

/// Per-span-name aggregation (count/total/mean/max), sorted by total
/// descending.
pub fn summary() -> Vec<SpanSummary> {
    let mut by_name: Vec<SpanSummary> = Vec::new();
    for e in snapshot_events() {
        let secs = e.dur_us as f64 / 1e6;
        match by_name.iter_mut().find(|s| s.name == e.name) {
            Some(s) => {
                s.count += 1;
                s.total_secs += secs;
                s.max_secs = s.max_secs.max(secs);
            }
            None => by_name.push(SpanSummary {
                name: e.name,
                cat: e.cat,
                count: 1,
                total_secs: secs,
                mean_secs: 0.0,
                max_secs: secs,
            }),
        }
    }
    for s in &mut by_name {
        s.mean_secs = s.total_secs / s.count as f64;
    }
    by_name.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
    by_name
}

/// [`summary`] rendered as an aligned text table (plus the non-zero
/// counters), ready to print.
pub fn summary_table() -> String {
    let rows = summary();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "span", "count", "total_s", "mean_s", "max_s"
    ));
    for s in &rows {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.6} {:>12.6} {:>12.6}\n",
            s.name, s.count, s.total_secs, s.mean_secs, s.max_secs
        ));
    }
    let counters: Vec<_> =
        registered_counters().into_iter().filter(|c| c.get() > 0).collect();
    if !counters.is_empty() {
        out.push_str(&format!("{:<40} {:>20}\n", "counter", "value"));
        for c in counters {
            out.push_str(&format!("{:<40} {:>20}\n", c.name(), c.get()));
        }
    }
    let gauges: Vec<_> =
        registered_gauges().into_iter().filter(|g| g.get() != 0).collect();
    if !gauges.is_empty() {
        out.push_str(&format!("{:<40} {:>20}\n", "gauge", "value"));
        for g in gauges {
            out.push_str(&format!("{:<40} {:>20}\n", g.name(), g.get()));
        }
    }
    let hists: Vec<_> =
        histogram_summaries().into_iter().filter(|h| h.count > 0).collect();
    if !hists.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "p50", "p95", "p99", "max"
        ));
        for h in hists {
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                h.name, h.count, h.p50, h.p95, h.p99, h.max
            ));
        }
    }
    out
}

/// Maps a dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters
/// become underscores.
fn sanitize_metric_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, ch) in s.chars().enumerate() {
        let valid = ch.is_ascii_alphabetic()
            || ch == '_'
            || ch == ':'
            || (i > 0 && ch.is_ascii_digit());
        out.push(if valid { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits an interned name into `(base, label_block)`:
/// `serve.request_us{tenant="a"}` → `("serve.request_us", Some("tenant=\"a\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Groups registered metrics by base name (registration order preserved)
/// so each Prometheus family is emitted contiguously under one `# TYPE`.
fn group_by_base<T>(items: Vec<T>, name_of: fn(&T) -> &'static str) -> Vec<(String, Vec<T>)> {
    let mut groups: Vec<(String, Vec<T>)> = Vec::new();
    for item in items {
        let (base, _) = split_labels(name_of(&item));
        let sane = sanitize_metric_name(base);
        match groups.iter_mut().find(|(b, _)| *b == sane) {
            Some((_, members)) => members.push(item),
            None => groups.push((sane, vec![item])),
        }
    }
    groups
}

fn push_series(out: &mut String, sane: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>, value: &str) {
    out.push_str(sane);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (l, e) => {
            out.push('{');
            if let Some(l) = l {
                out.push_str(l);
            }
            if let Some(e) = e {
                if l.is_some() {
                    out.push(',');
                }
                out.push_str(e);
            }
            out.push('}');
        }
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders every registered counter, gauge, and histogram in the
/// Prometheus text exposition format (`text/plain; version=0.0.4`):
/// counters and gauges as single series, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`, label blocks
/// carried over from [`counter_with`]/[`histogram_with`] names.
///
/// Consistency under concurrent recording: each histogram's buckets are
/// snapshotted once and every derived series (`_bucket`, `+Inf`,
/// `_count`) is computed from that one snapshot, so cumulative bucket
/// counts are monotone and the `+Inf` bucket always equals `_count`
/// (`_sum` is a separate relaxed load and may lead by in-flight
/// samples). Empty buckets below the maximum populated one are elided —
/// Prometheus histograms permit arbitrary bucket layouts.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for (sane, members) in group_by_base(registered_counters(), |c| c.name()) {
        out.push_str(&format!("# TYPE {sane} counter\n"));
        for c in members {
            let (_, labels) = split_labels(c.name());
            push_series(&mut out, &sane, "", labels, None, &c.get().to_string());
        }
    }
    for (sane, members) in group_by_base(registered_gauges(), |g| g.name()) {
        out.push_str(&format!("# TYPE {sane} gauge\n"));
        for g in members {
            let (_, labels) = split_labels(g.name());
            push_series(&mut out, &sane, "", labels, None, &g.get().to_string());
        }
    }
    for (sane, members) in group_by_base(registered_histograms(), |h| h.name()) {
        out.push_str(&format!("# TYPE {sane} histogram\n"));
        for h in members {
            let (_, labels) = split_labels(h.name());
            let counts = h.bucket_counts();
            let total: u64 = counts.iter().sum();
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate().take(HIST_BUCKETS - 1) {
                if c == 0 {
                    continue;
                }
                cum += c;
                let le = format!("le=\"{}\"", Histogram::bucket_upper_bound(i));
                push_series(&mut out, &sane, "_bucket", labels, Some(&le), &cum.to_string());
            }
            push_series(&mut out, &sane, "_bucket", labels, Some("le=\"+Inf\""), &total.to_string());
            push_series(&mut out, &sane, "_sum", labels, None, &h.sum().to_string());
            push_series(&mut out, &sane, "_count", labels, None, &total.to_string());
        }
    }
    out
}

fn trace_json() -> Json {
    let g = global();
    let mut trace_events: Vec<Json> = Vec::new();
    // Process + thread metadata so Perfetto shows friendly names.
    trace_events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        ("args", Json::obj([("name", Json::Str("nautilus".into()))])),
    ]));
    for ring in g.threads.lock().unwrap().iter() {
        trace_events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(ring.tid as i128)),
            (
                "args",
                Json::obj([("name", Json::Str(ring.label.lock().unwrap().clone()))]),
            ),
        ]));
    }
    let events = snapshot_events();
    let last_ts = events.iter().map(|e| e.start_us + e.dur_us).max().unwrap_or(0);
    for e in &events {
        let mut args = vec![("depth".to_string(), Json::Int(e.depth as i128))];
        if let Some(p) = e.parent {
            args.push(("parent".to_string(), Json::Str(p.to_string())));
        }
        trace_events.push(Json::obj([
            ("name", Json::Str(e.name.to_string())),
            ("cat", Json::Str(e.cat.to_string())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Int(e.start_us as i128)),
            ("dur", Json::Int(e.dur_us as i128)),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(e.tid as i128)),
            ("args", Json::Obj(args)),
        ]));
    }
    for c in registered_counters() {
        trace_events.push(Json::obj([
            ("name", Json::Str(c.name().to_string())),
            ("ph", Json::Str("C".into())),
            ("ts", Json::Int(last_ts as i128)),
            ("pid", Json::Int(1)),
            ("args", Json::obj([("value", Json::Int(c.get() as i128))])),
        ]));
    }
    for g in registered_gauges() {
        trace_events.push(Json::obj([
            ("name", Json::Str(g.name().to_string())),
            ("ph", Json::Str("C".into())),
            ("ts", Json::Int(last_ts as i128)),
            ("pid", Json::Int(1)),
            ("args", Json::obj([("value", Json::Int(g.get() as i128))])),
        ]));
    }
    // Histograms export as counter events whose args carry the quantile
    // series — Perfetto plots each arg as its own track.
    for h in histogram_summaries() {
        trace_events.push(Json::obj([
            ("name", Json::Str(h.name.to_string())),
            ("ph", Json::Str("C".into())),
            ("ts", Json::Int(last_ts as i128)),
            ("pid", Json::Int(1)),
            (
                "args",
                Json::obj([
                    ("count", Json::Int(h.count as i128)),
                    ("p50", Json::Int(h.p50 as i128)),
                    ("p95", Json::Int(h.p95 as i128)),
                    ("p99", Json::Int(h.p99 as i128)),
                    ("max", Json::Int(h.max as i128)),
                ]),
            ),
        ]));
    }
    Json::obj([("traceEvents", Json::Arr(trace_events))])
}

/// Writes the accumulated trace (spans + counters) as Chrome trace-event
/// JSON to `path`. Events are not consumed; later exports rewrite the
/// file with the fuller picture.
pub fn export_to(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, trace_json().to_string_pretty())
}

/// Exports to the destination configured via `NAUTILUS_TRACE` /
/// [`enable_to`]. Returns the path written, or `None` when no
/// destination is configured.
pub fn export() -> std::io::Result<Option<PathBuf>> {
    match trace_path() {
        Some(path) => {
            export_to(&path)?;
            Ok(Some(path))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Collection state is process-global, so everything that toggles it
    // lives in this one test (Rust runs tests in one process); the
    // fuller multi-thread/nesting validation runs in the dedicated
    // `tests/telemetry_trace.rs` integration binary.
    #[test]
    fn spans_counters_summary_and_export_round_trip() {
        assert!(!enabled(), "collection must start disabled");
        {
            // Disabled spans are inert.
            let _s = span("test", "t.disabled");
            FLOPS.add(5);
            SERVE_REQUEST_US.record(9);
        }
        assert_eq!(FLOPS.get(), 0, "disabled counter must not count");
        assert_eq!(SERVE_REQUEST_US.count(), 0, "disabled histogram must not record");

        enable();
        reset();
        {
            let _outer = span("test", "t.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test", "t.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _inner = span("test", "t.inner");
            }
        }
        let timed = timed_span("test", "t.timed");
        let secs = timed.finish();
        assert!(secs >= 0.0);
        FLOPS.add(7);
        let c = counter("test.dynamic");
        c.add(3);
        assert!(std::ptr::eq(c, counter("test.dynamic")), "interning is stable");
        SERVE_REQUEST_US.record(100);
        SERVE_REQUEST_US.record(1000);
        let dh = histogram("test.dynamic_hist");
        assert!(std::ptr::eq(dh, histogram("test.dynamic_hist")), "hist interning is stable");

        let rows = summary();
        let outer = rows.iter().find(|s| s.name == "t.outer").expect("outer present");
        let inner = rows.iter().find(|s| s.name == "t.inner").expect("inner present");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(outer.total_secs >= inner.total_secs, "parent covers child");
        assert!(inner.max_secs >= inner.mean_secs);
        assert_eq!(FLOPS.get(), 7);
        assert_eq!(counter("test.dynamic").get(), 3);

        let path = std::env::temp_dir()
            .join(format!("nautilus-telemetry-unit-{}.json", std::process::id()));
        export_to(&path).expect("export");
        let data = std::fs::read(&path).expect("read back");
        let parsed: Json = crate::json::from_slice(&data).expect("valid json");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert!(xs.len() >= 4, "outer + 2 inner + timed events");
        // The inner span's recorded parent is the outer span.
        let inner_ev = xs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("t.inner"))
            .expect("inner event");
        assert_eq!(
            inner_ev.get("args").and_then(|a| a.get("parent")).and_then(|p| p.as_str()),
            Some("t.outer")
        );
        assert!(
            events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name").and_then(|n| n.as_str()) == Some("flops")),
            "counter events present"
        );

        // The recorded histogram reaches the summary table and the trace
        // export (as a counter event carrying the quantile series).
        let hs = histogram_summaries();
        let req = hs.iter().find(|h| h.name == "serve.request_us").expect("registered");
        assert_eq!(req.count, 2);
        assert_eq!(req.max, 1000);
        let hist_ev = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("serve.request_us")
            })
            .expect("histogram counter event");
        assert_eq!(
            hist_ev.get("args").and_then(|a| a.get("count")).and_then(|v| v.as_u64()),
            Some(2)
        );
        assert!(hist_ev.get("args").and_then(|a| a.get("p50")).is_some());

        let table = summary_table();
        assert!(table.contains("t.outer") && table.contains("flops"));
        assert!(table.contains("serve.request_us"), "histogram row in table:\n{table}");

        // Gauges: set/add (negative deltas included), registration, table.
        SERVE_BATCH_QUEUE_DEPTH.set(4);
        POOL_PARKED_WORKERS.add(2);
        POOL_PARKED_WORKERS.add(-1);
        assert_eq!(SERVE_BATCH_QUEUE_DEPTH.get(), 4);
        assert_eq!(POOL_PARKED_WORKERS.get(), 1);
        let dg = gauge("test.dynamic_gauge");
        dg.set(-7);
        assert!(std::ptr::eq(dg, gauge("test.dynamic_gauge")), "gauge interning is stable");
        assert!(summary_table().contains("serve.batch_queue_depth"));

        // Labeled families: canonical label order, stable interning.
        let lc = counter_with("test.errors", &[("tenant", "alice"), ("code", "4xx")]);
        lc.add(2);
        assert!(
            std::ptr::eq(lc, counter_with("test.errors", &[("code", "4xx"), ("tenant", "alice")])),
            "label order canonicalized"
        );
        let lh = histogram_with("test.lat_us", &[("tenant", "bob")]);
        lh.record(7);
        lh.record(100);

        // Cardinality bound: past MAX_LABEL_SETS distinct sets, new label
        // sets collapse into one `_other` overflow series.
        for i in 0..MAX_LABEL_SETS {
            counter_with("test.card", &[("t", &format!("t{i}"))]).add(1);
        }
        let over_a = counter_with("test.card", &[("t", "overflow-a")]);
        let over_b = counter_with("test.card", &[("t", "overflow-b")]);
        assert!(std::ptr::eq(over_a, over_b), "overflow sets share one series");
        assert_eq!(over_a.name(), "test.card{t=\"_other\"}");

        // Prometheus exposition: families typed once, labels carried
        // through, cumulative buckets with +Inf == _count.
        let text = prometheus_text();
        assert!(text.contains("# TYPE flops counter"), "typed counter family:\n{text}");
        assert!(text.contains("\nflops 7\n"));
        assert!(text.contains("# TYPE serve_batch_queue_depth gauge"));
        assert!(text.contains("\nserve_batch_queue_depth 4\n"));
        assert!(text.contains("test_errors{code=\"4xx\",tenant=\"alice\"} 2"));
        assert!(text.contains("# TYPE test_lat_us histogram"));
        assert!(text.contains("test_lat_us_bucket{tenant=\"bob\",le=\"7\"} 1"));
        assert!(text.contains("test_lat_us_bucket{tenant=\"bob\",le=\"127\"} 2"));
        assert!(text.contains("test_lat_us_bucket{tenant=\"bob\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_lat_us_sum{tenant=\"bob\"} 107"));
        assert!(text.contains("test_lat_us_count{tenant=\"bob\"} 2"));
        assert_eq!(
            text.matches("# TYPE test_card counter").count(),
            1,
            "one TYPE line per family"
        );

        disable();
        reset();
        assert_eq!(SERVE_REQUEST_US.count(), 0, "reset clears histograms");
        assert_eq!(SERVE_BATCH_QUEUE_DEPTH.get(), 0, "reset clears gauges");
        SERVE_BATCH_QUEUE_DEPTH.set(9);
        assert_eq!(SERVE_BATCH_QUEUE_DEPTH.get(), 0, "disabled gauge must not record");
        assert!(
            std::ptr::eq(counter_with("test.errors", &[("tenant", "x")]), &DISABLED_COUNTER),
            "disabled families return the inert sink"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exposition_name_and_label_helpers() {
        assert_eq!(sanitize_metric_name("serve.request_us"), "serve_request_us");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a-b/c"), "a_b_c");
        assert_eq!(split_labels("plain"), ("plain", None));
        assert_eq!(
            split_labels("base{tenant=\"a\",code=\"4xx\"}"),
            ("base", Some("tenant=\"a\",code=\"4xx\""))
        );
        assert_eq!(
            labeled_name("m", &[("b", "2"), ("a", "x\"y\\z")]),
            "m{a=\"x\\\"y\\\\z\",b=\"2\"}"
        );
    }

    #[test]
    fn histogram_bucket_boundaries_and_empty_formatting() {
        // Boundaries: zero gets its own bucket; each power of two opens a
        // new one.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index((1 << 32) - 1), 32);
        assert_eq!(Histogram::bucket_index(1 << 32), 33);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(1), 1);
        assert_eq!(Histogram::bucket_lower_bound(2), 2);
        assert_eq!(Histogram::bucket_lower_bound(10), 512);
        assert_eq!(Histogram::bucket_lower_bound(64), 1u64 << 63);
        // Every bucket's bounds nest: lower(i) == upper(i-1) + 1.
        for i in 1..=64usize {
            assert_eq!(
                Histogram::bucket_lower_bound(i),
                Histogram::bucket_upper_bound(i - 1).wrapping_add(1),
                "bucket {i} bounds are contiguous"
            );
        }

        // Empty histogram: all-zero summary that formats cleanly.
        let empty = Histogram::new("test.empty_hist");
        let s = empty.summarize();
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0, 0));
        assert_eq!(empty.quantile(0.5), 0);
        let row = format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            s.name, s.count, s.p50, s.p95, s.p99, s.max
        );
        assert!(row.starts_with("test.empty_hist"));

        // Quantiles over 1..=100: within-bucket linear interpolation puts
        // the estimates near the true order statistics instead of jumping
        // to the containing power-of-two bound.
        let h = Histogram::new("test.quantiles");
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.quantile(0.0), 1, "lowest sample sits in bucket [1,1]");
        assert_eq!(h.quantile(0.5), 50, "rank 50 of 19/32 through bucket [32,63]");
        assert_eq!(h.quantile(0.95), 95, "rank 95 interpolated in bucket [64,100]");
        assert_eq!(h.quantile(0.99), 99, "rank 99 interpolated in bucket [64,100]");
        assert_eq!(h.quantile(1.0), 100, "top of the top bucket is the exact max");
        let s = h.summarize();
        assert_eq!(s.max, 100);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // Monotone in q.
        let mut prev = 0u64;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }

        // Exact powers of two: a single-valued bucket where the value is
        // both the max and the lower bound collapses to the exact value.
        let p = Histogram::new("test.pow2");
        for _ in 0..5 {
            p.observe(8);
        }
        assert_eq!(p.quantile(0.5), 8, "max-capping pins single-valued buckets");
        assert_eq!(p.quantile(1.0), 8);

        // Zeros-only and extreme values.
        let z = Histogram::new("test.zeros");
        z.observe(0);
        z.observe(0);
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.quantile(1.0), 0);
        let m = Histogram::new("test.extreme");
        m.observe(1);
        m.observe(u64::MAX);
        assert_eq!(m.quantile(0.0), 1);
        assert_eq!(m.quantile(1.0), u64::MAX, "top bucket interpolates up to the max");
    }
}
