//! The coordinator: shards one model-selection cycle across workers and
//! folds the results into the single-box answer, bit for bit.
//!
//! Scheduling model: every training unit is one *shard*, and every shard
//! dispatch is a *lease* whose duration is the HTTP read timeout
//! (`dist.lease_timeout_ms`). A failed or expired lease requeues the shard
//! with capped exponential backoff; the failing worker is re-probed and, if
//! dead, leaves the pool (its in-flight shard is reassigned to whoever is
//! left). A shard that exhausts `dist.max_shard_retries` fails the search;
//! losing every worker fails it immediately.
//!
//! Determinism contract: shards may complete in any order on any worker,
//! but the fold walks units in index order, absorbing each worker backend's
//! `(busy_secs, flops)` and applying the same strict-`>` first-wins
//! best-pick as `ModelSelection::fit`. Training itself is deterministic
//! given the plan graphs, datasets, and config (mini-batch permutations are
//! seeded by record count and epoch only), and every float crosses the wire
//! as exact bits, so the report matches a single box at any worker count.

use crate::proto;
use nautilus_core::backend::{Backend, BackendKind};
use nautilus_core::config::SystemConfig;
use nautilus_core::materializer::{MatError, Materializer};
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::session::{self, ModelSelection, SessionError, Strategy};
use nautilus_core::spec::CandidateModel;
use nautilus_data::Dataset;
use nautilus_dnn::{checkpoint, ModelGraph};
use nautilus_store::{IoPolicy, SharedIoStats, StoreError, TensorStore};
use nautilus_util::http;
use nautilus_util::{eventlog, telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One model-selection cycle to run distributed.
#[derive(Debug, Clone)]
pub struct DistJob {
    /// The candidate workload.
    pub candidates: Vec<CandidateModel>,
    /// System configuration, shipped verbatim to every worker.
    pub config: SystemConfig,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Accumulated training split.
    pub train: Dataset,
    /// Accumulated validation split.
    pub valid: Dataset,
}

/// Per-shard accounting for the report/bench output.
#[derive(Debug, Clone)]
pub struct ShardStat {
    /// Unit index this shard trained.
    pub unit_index: usize,
    /// Worker address that completed it.
    pub worker: String,
    /// Dispatch attempts (1 = no retry).
    pub attempts: u32,
    /// Request body bytes shipped on the successful attempt.
    pub bytes_shipped: u64,
    /// Wall seconds of the successful dispatch (ship + train + reply).
    pub secs: f64,
}

/// Outcome of a distributed search.
#[derive(Debug)]
pub struct DistReport {
    /// `(name, accuracy)` per member, in unit/member order — identical to
    /// `CycleReport::accuracies` from a single-box `fit`.
    pub accuracies: Vec<(String, Option<f32>)>,
    /// Best model by validation accuracy (first-wins on ties).
    pub best: Option<(String, f32)>,
    /// Candidate index of the best model.
    pub best_candidate: Option<usize>,
    /// The best candidate's trained graph, mapped back to its own topology.
    pub best_trained: Option<ModelGraph>,
    /// Number of training units sharded.
    pub units: usize,
    /// Total dispatch retries across all shards.
    pub retries: u64,
    /// Leases that expired (read timeout) rather than erroring fast.
    pub lease_timeouts: u64,
    /// Workers still alive at the end.
    pub workers_alive: usize,
    /// Per-shard accounting, in unit order.
    pub shard_stats: Vec<ShardStat>,
    /// Median measured coordinator→worker bandwidth (bytes/sec; 0 when the
    /// probe was skipped).
    pub net_bytes_per_sec: f64,
    /// Wall seconds of the dispatch+train+fold phase.
    pub train_secs: f64,
    /// Folded busy seconds across all worker backends.
    pub busy_secs: f64,
    /// Folded FLOPs across all worker backends.
    pub total_flops: f64,
}

/// Coordinator errors.
#[derive(Debug)]
pub enum DistError {
    /// Transport/filesystem failure outside the retry loop.
    Io(String),
    /// Wire encode/decode failure.
    Proto(proto::ProtoError),
    /// Planning failed (shared with the single-box session).
    Session(SessionError),
    /// Feature materialization failed.
    Mat(MatError),
    /// Feature store failure.
    Store(StoreError),
    /// No live workers (at start, or after losing all of them).
    NoWorkers(String),
    /// A shard ran out of retries.
    ShardFailed {
        /// The failing unit index.
        unit: usize,
        /// Attempts made.
        attempts: u32,
        /// Last error observed.
        last: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist io: {e}"),
            DistError::Proto(e) => write!(f, "dist proto: {e}"),
            DistError::Session(e) => write!(f, "dist planning: {e}"),
            DistError::Mat(e) => write!(f, "dist materialization: {e}"),
            DistError::Store(e) => write!(f, "dist store: {e}"),
            DistError::NoWorkers(e) => write!(f, "no live workers: {e}"),
            DistError::ShardFailed { unit, attempts, last } => {
                write!(f, "shard {unit} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<proto::ProtoError> for DistError {
    fn from(e: proto::ProtoError) -> Self {
        DistError::Proto(e)
    }
}

impl From<SessionError> for DistError {
    fn from(e: SessionError) -> Self {
        DistError::Session(e)
    }
}

impl From<MatError> for DistError {
    fn from(e: MatError) -> Self {
        DistError::Mat(e)
    }
}

impl From<StoreError> for DistError {
    fn from(e: StoreError) -> Self {
        DistError::Store(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e.to_string())
    }
}

/// One worker's slot in the pool.
struct WorkerSlot {
    addr: String,
    alive: AtomicBool,
    busy: AtomicBool,
}

/// Shared scheduler state between the main loop and dispatch threads.
struct Sched {
    workers: Vec<WorkerSlot>,
    /// `(unit_index, attempts, not_before)` — shards awaiting dispatch.
    queue: Mutex<VecDeque<(usize, u32, Instant)>>,
    retries: AtomicU64,
    lease_timeouts: AtomicU64,
    inflight: AtomicU64,
}

impl Sched {
    fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive.load(Ordering::SeqCst)).count()
    }

    fn mark_dead(&self, wi: usize) {
        if self.workers[wi].alive.swap(false, Ordering::SeqCst) {
            telemetry::DIST_WORKERS_ALIVE.set(self.alive_count() as i64);
            eventlog::warn(
                "dist.worker_leave",
                &[("worker", eventlog::Value::Str(&self.workers[wi].addr))],
            );
        }
    }
}

fn healthz(addr: &str, timeout: Duration) -> bool {
    matches!(http::request(addr, "GET", "/healthz", None, timeout), Ok((200, _)))
}

/// Probes each live worker with an echo payload and returns the median
/// measured round-trip bandwidth in bytes/sec (payload travels both ways,
/// so one probe moves `2 * probe_bytes`).
fn probe_net(workers: &[&str], probe_bytes: usize, timeout: Duration) -> f64 {
    let payload = vec![0xA5u8; probe_bytes.max(1)];
    let mut rates = Vec::new();
    for addr in workers {
        let t0 = Instant::now();
        match http::request(addr, "POST", "/work/probe", Some(&payload), timeout) {
            Ok((200, echo)) if echo.len() == payload.len() => {
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                rates.push(2.0 * payload.len() as f64 / secs);
            }
            _ => {}
        }
    }
    if rates.is_empty() {
        return 0.0;
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// Serializes the feature chunks one unit's plan loads, in store append
/// order, as `(store key, records, encoded bytes)` manifest entries.
fn unit_features(
    store: &TensorStore,
    plan: &nautilus_core::plan::ExecutablePlan,
) -> Result<Vec<(String, u64, Vec<u8>)>, DistError> {
    let mut out = Vec::new();
    for base in plan.materialized_keys() {
        for split in ["train", "valid"] {
            let key = format!("{base}:{split}");
            let cp = store.chunk_plan(&key)?;
            for chunk in &cp.chunks {
                let bytes = std::fs::read(&chunk.path)
                    .map_err(|e| DistError::Io(format!("chunk {}: {e}", chunk.path.display())))?;
                out.push((key.clone(), chunk.records as u64, bytes));
            }
        }
    }
    Ok(out)
}

/// Runs one distributed model-selection cycle over `workers` (host:port
/// addresses). `workdir` holds the coordinator-side feature store.
pub fn run_search(
    job: &DistJob,
    workers: &[String],
    workdir: &Path,
) -> Result<DistReport, DistError> {
    telemetry::init_from_env();
    eventlog::init_from_env();
    let mut config = job.config.clone();
    let dcfg = config.dist;
    let connect_timeout = Duration::from_millis(dcfg.connect_timeout_ms.max(1));
    let lease_timeout = Duration::from_millis(dcfg.lease_timeout_ms.max(1));
    let heartbeat = Duration::from_millis(dcfg.heartbeat_ms.max(1));

    // --- Worker admission: health-probe the roster. ---
    let mut alive: Vec<String> = Vec::new();
    for addr in workers {
        if healthz(addr, connect_timeout) {
            eventlog::info("dist.worker_join", &[("worker", eventlog::Value::Str(addr))]);
            alive.push(addr.clone());
        } else {
            eventlog::warn(
                "dist.worker_unreachable",
                &[("worker", eventlog::Value::Str(addr))],
            );
        }
    }
    if alive.is_empty() {
        return Err(DistError::NoWorkers(format!("none of {} workers answered", workers.len())));
    }
    telemetry::DIST_WORKERS_ALIVE.set(alive.len() as i64);

    // --- Network micro-probe: extend the I/O calibration with a measured
    // bytes-over-wire term. Telemetry always reports the measurement; the
    // planner only consumes it when `dist.calibrate_net` is set, because a
    // changed planner constant can change `V` — and the default contract is
    // bit-identity with a single box planning from the same config. ---
    let net_bps = probe_net(
        &alive.iter().map(String::as_str).collect::<Vec<_>>(),
        dcfg.net_probe_bytes as usize,
        connect_timeout.max(Duration::from_secs(5)),
    );
    if net_bps > 0.0 {
        telemetry::CALIBRATED_NET_BPS.set(net_bps as i64);
        eventlog::info(
            "dist.net_probe",
            &[
                ("bytes", eventlog::Value::U64(dcfg.net_probe_bytes as u64)),
                ("bytes_per_sec", eventlog::Value::F64(net_bps)),
                ("workers", eventlog::Value::U64(alive.len() as u64)),
            ],
        );
        if dcfg.calibrate_net {
            config.planner.net_bytes_per_sec = net_bps;
        }
    }

    // --- Deterministic planning, identical to the single-box session. ---
    if let Some(kind) = nautilus_tensor::ops::gemm::KernelKind::parse(&config.gemm_kernel) {
        nautilus_tensor::ops::gemm::set_kernel_preference(kind);
    }
    if config.threads > 0 {
        let _ = nautilus_util::pool::request_threads(config.threads);
    }
    let multi = MultiModelGraph::build(&job.candidates);
    // Mirror the session's exponential backoff of `r` (§4.2.3): when the
    // snapshot outgrows the configured maximum, the single-box `fit`
    // re-plans with a doubled `r` — the coordinator must plan with the
    // same effective value or `V` (and the plans) could differ.
    let mut max_records = config.max_records;
    let snapshot = job.train.len() + job.valid.len();
    if snapshot > max_records && job.strategy.runs_optimizer() {
        while snapshot > max_records {
            max_records *= 2;
        }
    }
    let (v, _milp) =
        ModelSelection::choose_v(&multi, &job.candidates, &config, job.strategy, max_records);
    let units = ModelSelection::build_units(&multi, &job.candidates, &config, job.strategy, &v)?;

    // --- Local feature materialization (the coordinator owns the store;
    // workers get the chunks shipped per shard). ---
    std::fs::create_dir_all(workdir).map_err(|e| DistError::Io(format!("workdir: {e}")))?;
    let io = SharedIoStats::new();
    let mut store = TensorStore::open(workdir.join("features"), io.clone())?;
    store.set_page_cache_bytes(config.hardware.page_cache_bytes);
    store.set_io_policy(IoPolicy {
        prefetch: config.io.prefetch,
        io_threads: config.io.io_threads,
        write_behind: config.io.write_behind,
        read_delay_ms: config.io.read_delay_ms,
    });
    let enforced_budget =
        if job.strategy == Strategy::MatAll { u64::MAX } else { config.disk_budget_bytes };
    let mut materializer = Materializer::new(store, enforced_budget);
    let mut backend = Backend::new(BackendKind::Real, config.hardware, io);
    let _ = materializer.install_v(&multi, &job.candidates, v.clone(), &mut backend)?;
    materializer.materialize_batch(&multi, "train", Some(&job.train), job.train.len(), &mut backend)?;
    materializer.materialize_batch(&multi, "valid", Some(&job.valid), job.valid.len(), &mut backend)?;
    materializer.store.flush_writes()?;

    // --- Shard payloads: shared blocks once, per-unit feature manifests. ---
    let graph_blocks: Vec<Vec<u8>> =
        job.candidates.iter().map(|c| checkpoint::save_to_bytes(&c.graph)).collect();
    let data_block = proto::encode_data_block(&job.train, &job.valid);
    let mut payloads: Vec<Arc<Vec<u8>>> = Vec::with_capacity(units.len());
    for (ui, (_, plan)) in units.iter().enumerate() {
        let features = unit_features(&materializer.store, plan)?;
        payloads.push(Arc::new(proto::encode_train_request(
            job.strategy,
            ui,
            max_records,
            &v,
            &config,
            &job.candidates,
            &data_block,
            &graph_blocks,
            &features,
        )));
    }

    // --- Lease-based dispatch across the worker pool. ---
    let t_train = Instant::now();
    let sched = Arc::new(Sched {
        workers: alive
            .iter()
            .map(|addr| WorkerSlot {
                addr: addr.clone(),
                alive: AtomicBool::new(true),
                busy: AtomicBool::new(false),
            })
            .collect(),
        queue: Mutex::new(
            (0..units.len()).map(|ui| (ui, 0u32, Instant::now())).collect(),
        ),
        retries: AtomicU64::new(0),
        lease_timeouts: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
    });

    let (tx, rx) = mpsc::channel::<Outcome>();

    let mut handles = Vec::new();
    for wi in 0..sched.workers.len() {
        let sched = Arc::clone(&sched);
        let payloads = payloads.clone();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            dispatch_loop(wi, &sched, &payloads, &tx, dcfg, lease_timeout, connect_timeout);
        }));
    }
    drop(tx);

    // --- Collect; heartbeat idle workers between arrivals. ---
    let mut done: BTreeMap<usize, (proto::TrainResponse, ShardStat)> = BTreeMap::new();
    let mut failure: Option<DistError> = None;
    while done.len() < units.len() {
        match rx.recv_timeout(heartbeat) {
            Ok(Outcome::Done { unit, resp, stat }) => {
                telemetry::DIST_SHARDS_DONE.add(1);
                done.insert(unit, (resp, stat));
            }
            Ok(Outcome::Failed { unit, attempts, last }) => {
                failure = Some(if sched.alive_count() == 0 {
                    DistError::NoWorkers(last)
                } else {
                    DistError::ShardFailed { unit, attempts, last }
                });
                break;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Heartbeat: silent deaths between dispatches get noticed
                // here rather than on the next (possibly huge) ship.
                for (wi, w) in sched.workers.iter().enumerate() {
                    if w.alive.load(Ordering::SeqCst)
                        && !w.busy.load(Ordering::SeqCst)
                        && !healthz(&w.addr, connect_timeout)
                    {
                        sched.mark_dead(wi);
                    }
                }
                if sched.alive_count() == 0 {
                    failure = Some(DistError::NoWorkers("all workers died".into()));
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if done.len() < units.len() && failure.is_none() {
                    failure = Some(DistError::NoWorkers("dispatchers exited early".into()));
                }
                break;
            }
        }
    }
    // Wind down: capture the surviving pool, then retire every dispatcher.
    let workers_alive = sched.alive_count();
    sched.queue.lock().unwrap().clear();
    for w in &sched.workers {
        w.alive.store(false, Ordering::SeqCst);
    }
    while let Ok(Outcome::Done { unit, resp, stat }) = rx.try_recv() {
        telemetry::DIST_SHARDS_DONE.add(1);
        done.insert(unit, (resp, stat));
    }
    for h in handles {
        let _ = h.join();
    }
    telemetry::DIST_SHARDS_INFLIGHT.set(0);
    if let Some(e) = failure {
        if done.len() < units.len() {
            return Err(e);
        }
    }

    // --- Deterministic fold, in unit order (same discipline as `fit`). ---
    let _sp_fold = telemetry::span("dist", "dist.fold");
    let mut accuracies: Vec<(String, Option<f32>)> = Vec::new();
    let mut best: Option<(usize, String, f32)> = None;
    let mut best_unit = 0usize;
    let mut shard_stats = Vec::with_capacity(units.len());
    for ui in 0..units.len() {
        let (resp, stat) = done
            .get(&ui)
            .ok_or_else(|| DistError::Io(format!("shard {ui} missing from fold")))?;
        backend.absorb_compute(resp.busy_secs, resp.flops);
        for r in &resp.members {
            if let Some(acc) = r.accuracy {
                if best.as_ref().is_none_or(|(_, _, b)| acc > *b) {
                    best = Some((r.candidate, r.name.clone(), acc));
                    best_unit = ui;
                }
            }
            accuracies.push((r.name.clone(), r.accuracy));
        }
        shard_stats.push(stat.clone());
    }
    let best_trained = match &best {
        Some((ci, _, _)) => done[&best_unit].0.trained.as_ref().map(|trained| {
            let (_, plan) = &units[best_unit];
            session::export_candidate(&multi, &job.candidates, plan, trained, *ci)
        }),
        None => None,
    };

    Ok(DistReport {
        accuracies,
        best: best.as_ref().map(|(_, n, a)| (n.clone(), *a)),
        best_candidate: best.as_ref().map(|(ci, _, _)| *ci),
        best_trained,
        units: units.len(),
        retries: sched.retries.load(Ordering::SeqCst),
        lease_timeouts: sched.lease_timeouts.load(Ordering::SeqCst),
        workers_alive,
        shard_stats,
        net_bytes_per_sec: net_bps,
        train_secs: t_train.elapsed().as_secs_f64(),
        busy_secs: backend.busy_secs(),
        total_flops: backend.total_flops(),
    })
}

/// A dispatch thread's verdict on one shard.
enum Outcome {
    /// The shard completed; `resp` is the decoded worker reply.
    Done { unit: usize, resp: proto::TrainResponse, stat: ShardStat },
    /// The shard ran out of retries (or workers).
    Failed { unit: usize, attempts: u32, last: String },
}

/// One worker's dispatch loop: pull ready shards, ship with the lease
/// timeout, classify failures (expiry vs. fast error), requeue with capped
/// exponential backoff, and retire the worker when it stops answering
/// health probes. Exits when its worker dies or the queue stays empty.
fn dispatch_loop(
    wi: usize,
    sched: &Sched,
    payloads: &[Arc<Vec<u8>>],
    tx: &mpsc::Sender<Outcome>,
    dcfg: nautilus_core::config::DistConfig,
    lease_timeout: Duration,
    connect_timeout: Duration,
) {
    let me = &sched.workers[wi];
    loop {
        if !me.alive.load(Ordering::SeqCst) {
            return;
        }
        // Pop the first *ready* shard; respect backoff deadlines. An empty
        // queue is NOT an exit condition — a shard in flight on another
        // worker may fail and requeue, so idle threads stay available
        // until the main loop retires them (`alive = false`).
        let job = {
            let mut q = sched.queue.lock().unwrap();
            let now = Instant::now();
            q.iter().position(|&(_, _, nb)| nb <= now).and_then(|i| q.remove(i))
        };
        let Some((unit, attempts, _)) = job else {
            std::thread::sleep(Duration::from_millis(dcfg.heartbeat_ms.max(1).min(50)));
            continue;
        };

        me.busy.store(true, Ordering::SeqCst);
        telemetry::DIST_SHARDS_INFLIGHT
            .set(sched.inflight.fetch_add(1, Ordering::SeqCst) as i64 + 1);
        let payload = &payloads[unit];
        let t0 = Instant::now();
        let result = {
            let _sp = telemetry::span("dist", "dist.ship");
            http::request(&me.addr, "POST", "/work/train", Some(payload), lease_timeout)
        };
        telemetry::DIST_SHARDS_INFLIGHT
            .set(sched.inflight.fetch_sub(1, Ordering::SeqCst) as i64 - 1);
        me.busy.store(false, Ordering::SeqCst);

        let err = match result {
            Ok((200, body)) => match proto::decode_train_response(&body) {
                Ok(resp) => {
                    let stat = ShardStat {
                        unit_index: unit,
                        worker: me.addr.clone(),
                        attempts: attempts + 1,
                        bytes_shipped: payload.len() as u64,
                        secs: t0.elapsed().as_secs_f64(),
                    };
                    let _ = tx.send(Outcome::Done { unit, resp, stat });
                    continue;
                }
                Err(e) => format!("worker {}: {e}", me.addr),
            },
            Ok((status, body)) => format!(
                "worker {}: status {status}: {}",
                me.addr,
                String::from_utf8_lossy(&body[..body.len().min(200)])
            ),
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                );
                if timed_out {
                    sched.lease_timeouts.fetch_add(1, Ordering::SeqCst);
                    telemetry::DIST_LEASE_TIMEOUTS.add(1);
                    eventlog::warn(
                        "dist.lease_timeout",
                        &[
                            ("worker", eventlog::Value::Str(&me.addr)),
                            ("unit", eventlog::Value::U64(unit as u64)),
                        ],
                    );
                }
                format!("worker {}: {e}", me.addr)
            }
        };

        // The lease is broken. Re-probe the worker: a dead worker leaves
        // the pool and its shard is reassigned to the survivors.
        if !healthz(&me.addr, connect_timeout) {
            sched.mark_dead(wi);
        }
        let attempts = attempts + 1;
        if attempts > dcfg.max_shard_retries {
            let _ = tx.send(Outcome::Failed { unit, attempts, last: err });
            continue;
        }
        sched.retries.fetch_add(1, Ordering::SeqCst);
        telemetry::DIST_RETRIES.add(1);
        let backoff_ms = dcfg
            .retry_backoff_ms
            .saturating_mul(1u64 << (attempts - 1).min(16))
            .min(dcfg.retry_backoff_cap_ms);
        eventlog::warn(
            "dist.lease_reassign",
            &[
                ("unit", eventlog::Value::U64(unit as u64)),
                ("attempts", eventlog::Value::U64(attempts as u64)),
                ("backoff_ms", eventlog::Value::U64(backoff_ms)),
                ("error", eventlog::Value::Str(&err)),
            ],
        );
        sched
            .queue
            .lock()
            .unwrap()
            .push_back((unit, attempts, Instant::now() + Duration::from_millis(backoff_ms)));
        if sched.alive_count() == 0 {
            let _ = tx.send(Outcome::Failed { unit, attempts, last: err });
            return;
        }
    }
}
