//! Versioned wire DTOs for the distributed execution plane.
//!
//! Framing follows the in-tree checkpoint idiom: a `u64` little-endian
//! header length, a JSON header (built with [`json_struct!`] DTOs), then
//! concatenated binary payload sections whose lengths the header
//! declares. Every float that influences selection travels as exact
//! bits: tensors ship through [`nautilus_tensor::ser`] (raw f32 bit
//! patterns), metric scalars ship as `to_bits()` integers, and the JSON
//! config floats round-trip exactly because Rust's `f64` `Display` is
//! shortest-roundtrip. That is what lets a distributed run reproduce the
//! single-box selection output bit for bit.
//!
//! Schema versioning policy: both request and response headers carry
//! `version` = [`WIRE_VERSION`]. A decoder rejects any other value with
//! [`ProtoError::Version`] — there is no cross-version negotiation, so
//! any breaking change to a DTO or section layout MUST bump the
//! constant. Coordinator and workers are expected to run the same build.

use nautilus_core::config::SystemConfig;
use nautilus_core::multimodel::MNodeId;
use nautilus_core::spec::{CandidateModel, Hyper};
use nautilus_core::trainer::MemberResult;
use nautilus_core::Strategy;
use nautilus_data::Dataset;
use nautilus_dnn::{checkpoint, ModelGraph, TaskKind};
use nautilus_tensor::{ser, Tensor};
use nautilus_util::json::{self, FromJson, Json, ToJson};
use nautilus_util::json_struct;
use std::collections::BTreeSet;

/// Current wire-schema version; bump on any breaking DTO change.
pub const WIRE_VERSION: u64 = 1;

/// Errors from encoding/decoding wire messages.
#[derive(Debug)]
pub enum ProtoError {
    /// Framing damage: truncated buffer, bad lengths.
    Frame(String),
    /// JSON header failed to parse or validate.
    Header(String),
    /// Peer speaks a different wire-schema version.
    Version {
        /// The version the peer sent.
        got: u64,
    },
    /// A binary section failed to decode (tensor/checkpoint payloads).
    Payload(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "wire framing: {e}"),
            ProtoError::Header(e) => write!(f, "wire header: {e}"),
            ProtoError::Version { got } => {
                write!(f, "wire version {got} != supported {WIRE_VERSION}")
            }
            ProtoError::Payload(e) => write!(f, "wire payload: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One candidate in the request header; the graph itself is a binary
/// checkpoint section of `graph_len` bytes.
#[derive(Debug, Clone)]
pub struct CandidateDto {
    /// Candidate name (unique within the workload).
    pub name: String,
    /// Training hyperparameters.
    pub hyper: Hyper,
    /// Task head semantics.
    pub task: TaskKind,
    /// Byte length of this candidate's checkpoint section.
    pub graph_len: u64,
}

json_struct!(CandidateDto { name, hyper, task, graph_len });

/// One materialized-feature chunk in the request manifest; the encoded
/// tensor is a binary section of `len` bytes. Chunks are listed (and
/// re-appended by the worker) in store append order, so the worker's
/// feature store reproduces the coordinator's chunk boundaries exactly.
#[derive(Debug, Clone)]
pub struct FeatureChunkDto {
    /// Full store key, including the `:train`/`:valid` split suffix.
    pub key: String,
    /// Records in the chunk.
    pub records: u64,
    /// Byte length of the chunk's encoded-tensor section.
    pub len: u64,
}

json_struct!(FeatureChunkDto { key, records, len });

#[derive(Debug, Clone)]
struct TrainRequestHeader {
    version: u64,
    strategy: String,
    unit_index: u64,
    max_records: u64,
    v: Vec<u64>,
    config: SystemConfig,
    candidates: Vec<CandidateDto>,
    data_len: u64,
    features: Vec<FeatureChunkDto>,
}

json_struct!(TrainRequestHeader {
    version,
    strategy,
    unit_index,
    max_records,
    v,
    config,
    candidates,
    data_len,
    features
});

/// One member's training outcome; metric floats travel as exact bits.
#[derive(Debug, Clone)]
pub struct MemberResultDto {
    /// Candidate index in the workload.
    pub candidate: u64,
    /// Candidate name.
    pub name: String,
    /// `f32::to_bits` of the validation accuracy, if evaluated.
    pub accuracy_bits: Option<u64>,
    /// `f32::to_bits` of the final-epoch mean training loss.
    pub train_loss_bits: Option<u64>,
}

json_struct!(MemberResultDto { candidate, name, accuracy_bits, train_loss_bits });

#[derive(Debug, Clone)]
struct TrainResponseHeader {
    version: u64,
    unit_index: u64,
    busy_secs_bits: u64,
    flops_bits: u64,
    members: Vec<MemberResultDto>,
    trained_len: u64,
}

json_struct!(TrainResponseHeader {
    version,
    unit_index,
    busy_secs_bits,
    flops_bits,
    members,
    trained_len
});

/// A decoded `/work/train` request: the worker's full shard spec.
#[derive(Debug)]
pub struct TrainRequest {
    /// Execution strategy (parsed from its wire label).
    pub strategy: Strategy,
    /// Which training unit of the deterministic unit list to run.
    pub unit_index: usize,
    /// The coordinator's current `r` (plans depend on it).
    pub max_records: usize,
    /// The chosen materialized set `V`, as merged-node indices.
    pub v: BTreeSet<MNodeId>,
    /// Full system configuration (identical on every participant).
    pub config: SystemConfig,
    /// The candidate workload, graphs restored bit-exactly.
    pub candidates: Vec<CandidateModel>,
    /// Accumulated training split.
    pub train: Dataset,
    /// Accumulated validation split.
    pub valid: Dataset,
    /// Materialized-feature chunks `(store key, tensor)`, in append order.
    pub features: Vec<(String, Tensor)>,
}

/// A decoded `/work/train` response.
#[derive(Debug)]
pub struct TrainResponse {
    /// Echo of the request's unit index.
    pub unit_index: usize,
    /// The worker backend's busy seconds, for `absorb_compute`.
    pub busy_secs: f64,
    /// The worker backend's executed FLOPs, for `absorb_compute`.
    pub flops: f64,
    /// Per-member training outcomes, metric bits restored exactly.
    pub members: Vec<MemberResult>,
    /// The trained plan graph (`None` only if training retained nothing).
    pub trained: Option<ModelGraph>,
}

fn frame(header: Json, sections: &[&[u8]]) -> Vec<u8> {
    let header_bytes = json::to_vec(&header);
    let payload: usize = sections.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(8 + header_bytes.len() + payload);
    out.extend_from_slice(&(header_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&header_bytes);
    for s in sections {
        out.extend_from_slice(s);
    }
    out
}

fn unframe(bytes: &[u8]) -> Result<(Json, &[u8]), ProtoError> {
    if bytes.len() < 8 {
        return Err(ProtoError::Frame("shorter than length prefix".into()));
    }
    let header_len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let rest = &bytes[8..];
    if rest.len() < header_len {
        return Err(ProtoError::Frame(format!(
            "header length {header_len} exceeds remaining {} bytes",
            rest.len()
        )));
    }
    let header = std::str::from_utf8(&rest[..header_len])
        .map_err(|e| ProtoError::Header(format!("not utf-8: {e}")))?;
    let header = Json::parse(header).map_err(|e| ProtoError::Header(e.to_string()))?;
    Ok((header, &rest[header_len..]))
}

fn take<'a>(payload: &mut &'a [u8], len: u64, what: &str) -> Result<&'a [u8], ProtoError> {
    let len = len as usize;
    if payload.len() < len {
        return Err(ProtoError::Frame(format!(
            "{what}: section of {len} bytes exceeds remaining {}",
            payload.len()
        )));
    }
    let (head, rest) = payload.split_at(len);
    *payload = rest;
    Ok(head)
}

fn check_version(version: u64) -> Result<(), ProtoError> {
    if version != WIRE_VERSION {
        return Err(ProtoError::Version { got: version });
    }
    Ok(())
}

/// Encodes a `/work/train` request body.
///
/// Section order after the JSON header: one checkpoint per candidate,
/// the dataset block (`train.inputs, train.labels, valid.inputs,
/// valid.labels` via [`ser::encode_many`]), then one encoded tensor per
/// feature chunk, in manifest order.
#[allow(clippy::too_many_arguments)]
pub fn encode_train_request(
    strategy: Strategy,
    unit_index: usize,
    max_records: usize,
    v: &BTreeSet<MNodeId>,
    config: &SystemConfig,
    candidates: &[CandidateModel],
    data_block: &[u8],
    graph_blocks: &[Vec<u8>],
    features: &[(String, u64, Vec<u8>)],
) -> Vec<u8> {
    debug_assert_eq!(candidates.len(), graph_blocks.len());
    let cand_dtos: Vec<CandidateDto> = candidates
        .iter()
        .zip(graph_blocks)
        .map(|(c, g)| CandidateDto {
            name: c.name.clone(),
            hyper: c.hyper.clone(),
            task: c.task,
            graph_len: g.len() as u64,
        })
        .collect();
    let feat_dtos: Vec<FeatureChunkDto> = features
        .iter()
        .map(|(key, records, bytes)| FeatureChunkDto {
            key: key.clone(),
            records: *records,
            len: bytes.len() as u64,
        })
        .collect();
    let header = TrainRequestHeader {
        version: WIRE_VERSION,
        strategy: strategy.label().to_string(),
        unit_index: unit_index as u64,
        max_records: max_records as u64,
        v: v.iter().map(|m| m.index() as u64).collect(),
        config: config.clone(),
        candidates: cand_dtos,
        data_len: data_block.len() as u64,
        features: feat_dtos,
    };
    let mut sections: Vec<&[u8]> = graph_blocks.iter().map(|g| g.as_slice()).collect();
    sections.push(data_block);
    for (_, _, bytes) in features {
        sections.push(bytes);
    }
    frame(header.to_json(), &sections)
}

/// Encodes the shared dataset block shipped with every shard.
pub fn encode_data_block(train: &Dataset, valid: &Dataset) -> Vec<u8> {
    ser::encode_many(&[
        train.inputs.clone(),
        train.labels.clone(),
        valid.inputs.clone(),
        valid.labels.clone(),
    ])
}

/// Decodes a `/work/train` request body back into domain types.
pub fn decode_train_request(bytes: &[u8]) -> Result<TrainRequest, ProtoError> {
    let (header, mut payload) = unframe(bytes)?;
    let header =
        TrainRequestHeader::from_json(&header).map_err(|e| ProtoError::Header(e.to_string()))?;
    check_version(header.version)?;
    let strategy = Strategy::from_label(&header.strategy)
        .ok_or_else(|| ProtoError::Header(format!("unknown strategy '{}'", header.strategy)))?;

    let mut candidates = Vec::with_capacity(header.candidates.len());
    for dto in &header.candidates {
        let block = take(&mut payload, dto.graph_len, "candidate checkpoint")?;
        let graph = checkpoint::load_from_bytes(block)
            .map_err(|e| ProtoError::Payload(format!("candidate '{}': {e}", dto.name)))?;
        candidates.push(CandidateModel {
            name: dto.name.clone(),
            graph,
            hyper: dto.hyper.clone(),
            task: dto.task,
        });
    }

    let data_block = take(&mut payload, header.data_len, "dataset block")?;
    let tensors =
        ser::decode_many(data_block).map_err(|e| ProtoError::Payload(format!("datasets: {e}")))?;
    let [ti, tl, vi, vl]: [Tensor; 4] = tensors
        .try_into()
        .map_err(|t: Vec<Tensor>| ProtoError::Payload(format!("expected 4 tensors, got {}", t.len())))?;
    let train =
        Dataset::new(ti, tl).map_err(|e| ProtoError::Payload(format!("train split: {e}")))?;
    let valid =
        Dataset::new(vi, vl).map_err(|e| ProtoError::Payload(format!("valid split: {e}")))?;

    let mut features = Vec::with_capacity(header.features.len());
    for dto in &header.features {
        let block = take(&mut payload, dto.len, "feature chunk")?;
        let tensor = ser::decode(block)
            .map_err(|e| ProtoError::Payload(format!("feature chunk '{}': {e}", dto.key)))?;
        features.push((dto.key.clone(), tensor));
    }
    if !payload.is_empty() {
        return Err(ProtoError::Frame(format!("{} trailing bytes", payload.len())));
    }

    Ok(TrainRequest {
        strategy,
        unit_index: header.unit_index as usize,
        max_records: header.max_records as usize,
        v: header.v.iter().map(|&i| MNodeId(i as usize)).collect(),
        config: header.config,
        candidates,
        train,
        valid,
        features,
    })
}

/// Encodes a `/work/train` response body.
pub fn encode_train_response(
    unit_index: usize,
    busy_secs: f64,
    flops: f64,
    members: &[MemberResult],
    trained: Option<&ModelGraph>,
) -> Vec<u8> {
    let trained_block = trained.map(checkpoint::save_to_bytes).unwrap_or_default();
    let header = TrainResponseHeader {
        version: WIRE_VERSION,
        unit_index: unit_index as u64,
        busy_secs_bits: busy_secs.to_bits(),
        flops_bits: flops.to_bits(),
        members: members
            .iter()
            .map(|m| MemberResultDto {
                candidate: m.candidate as u64,
                name: m.name.clone(),
                accuracy_bits: m.accuracy.map(|a| a.to_bits() as u64),
                train_loss_bits: m.train_loss.map(|l| l.to_bits() as u64),
            })
            .collect(),
        trained_len: trained_block.len() as u64,
    };
    frame(header.to_json(), &[&trained_block])
}

/// Decodes a `/work/train` response body.
pub fn decode_train_response(bytes: &[u8]) -> Result<TrainResponse, ProtoError> {
    let (header, mut payload) = unframe(bytes)?;
    let header =
        TrainResponseHeader::from_json(&header).map_err(|e| ProtoError::Header(e.to_string()))?;
    check_version(header.version)?;
    let trained = if header.trained_len > 0 {
        let block = take(&mut payload, header.trained_len, "trained checkpoint")?;
        Some(
            checkpoint::load_from_bytes(block)
                .map_err(|e| ProtoError::Payload(format!("trained graph: {e}")))?,
        )
    } else {
        None
    };
    if !payload.is_empty() {
        return Err(ProtoError::Frame(format!("{} trailing bytes", payload.len())));
    }
    Ok(TrainResponse {
        unit_index: header.unit_index as usize,
        busy_secs: f64::from_bits(header.busy_secs_bits),
        flops: f64::from_bits(header.flops_bits),
        members: header
            .members
            .iter()
            .map(|m| MemberResult {
                candidate: m.candidate as usize,
                name: m.name.clone(),
                accuracy: m.accuracy_bits.map(|b| f32::from_bits(b as u32)),
                train_loss: m.train_loss_bits.map(|b| f32::from_bits(b as u32)),
            })
            .collect(),
        trained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_round_trips_metric_bits_exactly() {
        // Awkward floats whose decimal representations don't round-trip
        // at low precision — the bit transport must not care.
        let members = vec![
            MemberResult {
                candidate: 2,
                name: "m2".into(),
                accuracy: Some(f32::from_bits(0x3f7f_ffff)),
                train_loss: Some(0.1f32 + 0.2f32),
            },
            MemberResult { candidate: 0, name: "m0".into(), accuracy: None, train_loss: None },
        ];
        let busy = 1.0 / 3.0;
        let flops = f64::from_bits(1.23456789e12_f64.to_bits() + 1);
        let bytes = encode_train_response(7, busy, flops, &members, None);
        let back = decode_train_response(&bytes).unwrap();
        assert_eq!(back.unit_index, 7);
        assert_eq!(back.busy_secs.to_bits(), busy.to_bits());
        assert_eq!(back.flops.to_bits(), flops.to_bits());
        assert_eq!(back.members.len(), 2);
        assert_eq!(
            back.members[0].accuracy.unwrap().to_bits(),
            members[0].accuracy.unwrap().to_bits()
        );
        assert_eq!(
            back.members[0].train_loss.unwrap().to_bits(),
            members[0].train_loss.unwrap().to_bits()
        );
        assert!(back.members[1].accuracy.is_none());
        assert!(back.trained.is_none());
    }

    #[test]
    fn rejects_foreign_versions_and_damaged_frames() {
        let bytes = encode_train_response(0, 0.0, 0.0, &[], None);
        // Flip the version inside the JSON header.
        let tampered = String::from_utf8(bytes[8..].to_vec())
            .unwrap()
            .replacen(&format!("\"version\":{WIRE_VERSION}"), "\"version\":999", 1);
        let mut raw = ((tampered.len()) as u64).to_le_bytes().to_vec();
        raw.extend_from_slice(tampered.as_bytes());
        match decode_train_response(&raw) {
            Err(ProtoError::Version { got: 999 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        // Truncations fail cleanly at every prefix length.
        let ok = encode_train_response(0, 1.5, 2.5, &[], None);
        for n in 0..ok.len() {
            assert!(decode_train_response(&ok[..n]).is_err(), "prefix {n} must fail");
        }
    }
}
