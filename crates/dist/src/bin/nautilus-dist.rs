//! `nautilus-dist` — distributed execution plane CLI.
//!
//! Subcommands:
//!
//! - `worker --addr HOST:PORT [--workdir DIR] [--threads N]
//!   [--crash-after-trains N]` — run a training worker. Prints
//!   `LISTEN <addr>` on stdout once bound (port 0 picks a free port), then
//!   serves until killed.
//! - `demo` — multi-process loopback demonstration: spawns two workers,
//!   runs one model-selection cycle single-box and distributed, checks the
//!   selection outputs are bit-identical, exercises worker-kill recovery,
//!   and writes `results/BENCH_dist.json` with shard throughput and the
//!   2-worker speedup.

use nautilus_dist::{run_search, run_worker, DistJob, DistReport, WorkerOptions};
use nautilus_repro_dist_deps::*;

/// Internal prelude so the binary reads like the examples.
mod nautilus_repro_dist_deps {
    pub use nautilus_core::session::{CycleInput, ModelSelection};
    pub use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
    pub use nautilus_core::{BackendKind, Strategy, SystemConfig};
    pub use nautilus_data::Dataset;
    pub use std::io::{BufRead, Write};
    pub use std::path::PathBuf;
    pub use std::process::{Child, Command, Stdio};
    pub use std::time::Instant;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("worker") => worker_cmd(&args[1..]),
        Some("demo") => demo_cmd(),
        _ => {
            eprintln!(
                "usage: nautilus-dist worker --addr HOST:PORT [--workdir DIR] [--threads N] \
                 [--crash-after-trains N]\n       nautilus-dist demo"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn worker_cmd(args: &[String]) -> i32 {
    let mut opts = WorkerOptions {
        workdir: std::env::temp_dir().join(format!("nautilus-dist-w{}", std::process::id())),
        ..WorkerOptions::default()
    };
    if let Some(a) = flag(args, "--addr") {
        opts.addr = a;
    }
    if let Some(d) = flag(args, "--workdir") {
        opts.workdir = PathBuf::from(d);
    }
    if let Some(t) = flag(args, "--threads").and_then(|t| t.parse().ok()) {
        opts.threads = t;
    }
    if let Some(n) = flag(args, "--crash-after-trains").and_then(|n| n.parse().ok()) {
        opts.crash_after_trains = Some(n);
    }
    match run_worker(opts) {
        Ok(handle) => {
            println!("LISTEN {}", handle.addr());
            let _ = std::io::stdout().flush();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("worker failed to start: {e}");
            1
        }
    }
}

/// Spawns a worker subprocess of this same binary and returns it with its
/// bound address (parsed from the `LISTEN` line).
fn spawn_worker(workdir: &PathBuf, crash_after_trains: Option<u64>) -> (Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workdir")
        .arg(workdir)
        .stdout(Stdio::piped());
    if let Some(n) = crash_after_trains {
        cmd.arg("--crash-after-trains").arg(n.to_string());
    }
    let mut child = cmd.spawn().expect("spawn worker");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line).expect("read LISTEN line");
    let addr = line.trim().strip_prefix("LISTEN ").expect("LISTEN prefix").to_string();
    (child, addr)
}

fn acc_bits(acc: &[(String, Option<f32>)]) -> Vec<(String, Option<u32>)> {
    acc.iter().map(|(n, a)| (n.clone(), a.map(f32::to_bits))).collect()
}

/// One single-box cycle via the ordinary session; the ground truth the
/// distributed run must reproduce bit for bit.
fn single_box(
    candidates: &[nautilus_core::CandidateModel],
    config: &SystemConfig,
    strategy: Strategy,
    train: &Dataset,
    valid: &Dataset,
    workdir: &PathBuf,
) -> (Vec<(String, Option<f32>)>, Option<(String, f32)>, f64) {
    let t0 = Instant::now();
    let mut session = ModelSelection::new(
        candidates.to_vec(),
        config.clone(),
        strategy,
        BackendKind::Real,
        workdir,
    )
    .expect("session initializes");
    let report = session
        .fit(CycleInput::Real { train: train.clone(), valid: valid.clone() })
        .expect("cycle runs");
    (report.accuracies, report.best, t0.elapsed().as_secs_f64())
}

fn demo_cmd() -> i32 {
    let results_dir =
        PathBuf::from(std::env::var("NAUTILUS_RESULTS").unwrap_or_else(|_| "results".into()));
    let scratch = std::env::temp_dir().join(format!("nautilus-dist-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(3);
    let pool = spec.ner_config().generate(60);
    let (train, valid) = pool.split_at(48);
    let config = SystemConfig::tiny();

    let mut children: Vec<Child> = Vec::new();
    let mut failures = 0usize;

    // --- Part 1: bit-identity under Nautilus (materialized features ship
    // over the wire) with two workers. ---
    let (c1, w1) = spawn_worker(&scratch.join("w1"), None);
    let (c2, w2) = spawn_worker(&scratch.join("w2"), None);
    children.extend([c1, c2]);
    println!("workers: {w1} {w2}");

    let (sb_acc, sb_best, _) =
        single_box(&candidates, &config, Strategy::Nautilus, &train, &valid, &scratch.join("sb-n"));
    let job = DistJob {
        candidates: candidates.clone(),
        config: config.clone(),
        strategy: Strategy::Nautilus,
        train: train.clone(),
        valid: valid.clone(),
    };
    let rep = run_search(&job, &[w1.clone(), w2.clone()], &scratch.join("co-n"))
        .expect("distributed nautilus run");
    let nautilus_identical =
        acc_bits(&sb_acc) == acc_bits(&rep.accuracies) && best_bits(&sb_best) == best_bits(&rep.best);
    println!(
        "nautilus strategy: {} units, bit-identical = {nautilus_identical}",
        rep.units
    );
    if !nautilus_identical {
        failures += 1;
    }

    // --- Part 2: shard throughput + 2-worker speedup under Current
    // Practice (three independent units — real parallelism). ---
    let (cp_acc, cp_best, t_single) = single_box(
        &candidates,
        &config,
        Strategy::CurrentPractice,
        &train,
        &valid,
        &scratch.join("sb-cp"),
    );
    let job_cp = DistJob { strategy: Strategy::CurrentPractice, ..job.clone() };
    let t0 = Instant::now();
    let rep1 = run_search(&job_cp, &[w1.clone()], &scratch.join("co-cp1")).expect("1-worker run");
    let t_one = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let rep2 = run_search(&job_cp, &[w1.clone(), w2.clone()], &scratch.join("co-cp2"))
        .expect("2-worker run");
    let t_two = t0.elapsed().as_secs_f64();
    let cp_identical = acc_bits(&cp_acc) == acc_bits(&rep1.accuracies)
        && acc_bits(&cp_acc) == acc_bits(&rep2.accuracies)
        && best_bits(&cp_best) == best_bits(&rep2.best);
    println!(
        "current practice: {} units; single-box {t_single:.2}s, 1-worker {t_one:.2}s, \
         2-worker {t_two:.2}s, bit-identical = {cp_identical}",
        rep2.units
    );
    if !cp_identical {
        failures += 1;
    }

    // --- Part 3: worker-kill recovery. A worker that dies mid-lease must
    // have its shard reassigned; the answer must not change. ---
    let (c3, w3) = spawn_worker(&scratch.join("w3"), Some(0));
    children.push(c3);
    let rep_kill = run_search(&job_cp, &[w3.clone(), w1.clone()], &scratch.join("co-kill"))
        .expect("kill-recovery run");
    let kill_identical = acc_bits(&cp_acc) == acc_bits(&rep_kill.accuracies);
    let recovered = rep_kill.retries >= 1 && kill_identical;
    println!(
        "kill recovery: retries = {}, lease_timeouts = {}, workers left = {}, \
         bit-identical = {kill_identical}",
        rep_kill.retries, rep_kill.lease_timeouts, rep_kill.workers_alive
    );
    if !recovered {
        failures += 1;
    }

    write_bench(
        &results_dir,
        &rep,
        &rep2,
        &rep_kill,
        t_single,
        t_one,
        t_two,
        nautilus_identical && cp_identical && kill_identical,
    );

    for mut c in children {
        let _ = c.kill();
        let _ = c.wait();
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if failures == 0 {
        println!("dist demo OK");
        0
    } else {
        eprintln!("dist demo FAILED: {failures} check(s)");
        1
    }
}

fn best_bits(best: &Option<(String, f32)>) -> Option<(String, u32)> {
    best.as_ref().map(|(n, a)| (n.clone(), a.to_bits()))
}

#[allow(clippy::too_many_arguments)]
fn write_bench(
    results_dir: &PathBuf,
    rep_nautilus: &DistReport,
    rep2: &DistReport,
    rep_kill: &DistReport,
    t_single: f64,
    t_one: f64,
    t_two: f64,
    bit_identical: bool,
) {
    std::fs::create_dir_all(results_dir).expect("results dir");
    let bytes2: u64 = rep2.shard_stats.iter().map(|s| s.bytes_shipped).sum();
    let json = format!(
        "{{\n  \"bench\": \"dist\",\n  \"workers\": 2,\n  \"units\": {},\n  \
         \"bit_identical\": {},\n  \"single_box_secs\": {:.6},\n  \
         \"dist_1worker_secs\": {:.6},\n  \"dist_2worker_secs\": {:.6},\n  \
         \"speedup_2_over_1\": {:.4},\n  \"shard_throughput_per_sec\": {:.4},\n  \
         \"bytes_shipped\": {},\n  \"net_probe_bytes_per_sec\": {:.1},\n  \
         \"nautilus_units\": {},\n  \"kill_recovery_retries\": {},\n  \
         \"kill_recovery_lease_timeouts\": {}\n}}\n",
        rep2.units,
        bit_identical,
        t_single,
        t_one,
        t_two,
        t_one / t_two.max(1e-9),
        rep2.units as f64 / rep2.train_secs.max(1e-9),
        bytes2,
        rep2.net_bytes_per_sec,
        rep_nautilus.units,
        rep_kill.retries,
        rep_kill.lease_timeouts,
    );
    let path = results_dir.join("BENCH_dist.json");
    std::fs::write(&path, json).expect("write BENCH_dist.json");
    println!("wrote {}", path.display());
}
