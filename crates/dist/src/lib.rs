#![warn(missing_docs)]

//! Distributed execution plane: a coordinator that shards one model-selection
//! cycle across remote workers, over the in-tree HTTP/1.1 stack.
//!
//! Architecture mirrors the single-box session (`nautilus_core::session`):
//! the coordinator runs the deterministic planning pipeline (profile → MILP
//! `V` → fusion → executable plans), materializes features locally, then
//! ships each training unit — candidates as bit-exact checkpoints, the
//! labeled snapshot, and the unit's materialized-feature chunks — to a
//! worker's `POST /work/train`. Workers rebuild the identical plan from the
//! same `(candidates, config, strategy, V)` via
//! `ModelSelection::build_units`, train locally, and return per-member
//! metrics plus the trained plan graph. The coordinator folds results in
//! unit order with the same `absorb_compute` + first-wins best-pick
//! discipline as `ModelSelection::fit`, so the distributed selection output
//! is **bit-identical** to a single box at any worker count.
//!
//! Fault model: every shard is a lease. A dispatch's HTTP read timeout is
//! the lease; expiry or transport failure requeues the shard with capped
//! exponential backoff (`dist.retry_backoff_ms` doubling up to
//! `dist.retry_backoff_cap_ms`, at most `dist.max_shard_retries` retries),
//! and a worker that fails a follow-up health probe leaves the pool. A
//! heartbeat tick re-probes idle workers so silent deaths are noticed
//! between dispatches.
//!
//! Wire schema: see [`proto`] — versioned framed messages; any breaking
//! change must bump [`proto::WIRE_VERSION`].

pub mod coordinator;
pub mod proto;
pub mod worker;

pub use coordinator::{run_search, DistError, DistJob, DistReport, ShardStat};
pub use worker::{run_worker, WorkerOptions};
