//! The remote worker: a small HTTP server that trains shipped units.
//!
//! Routes:
//!
//! - `GET /healthz` — liveness + wire version (also the heartbeat target).
//! - `GET /work/status` — idle/training state and shard counters.
//! - `POST /work/probe` — echoes the body; the coordinator times a
//!   round-trip of `dist.net_probe_bytes` to measure loopback/NIC
//!   bandwidth for the planner's bytes-over-wire term.
//! - `POST /work/train` — a framed [`crate::proto`] train request; the
//!   worker rebuilds the deterministic unit list from the shipped
//!   `(candidates, config, strategy, V)`, replays the feature chunks into
//!   a fresh local store (preserving the coordinator's chunk boundaries),
//!   trains the requested unit, and answers with framed metrics + the
//!   trained plan graph.
//!
//! The worker is stateless across requests: every shard gets a fresh
//! `TensorStore` under `workdir/shard-<seq>`, so retried or reassigned
//! leases cannot observe a half-written store from a previous attempt.

use crate::proto;
use nautilus_core::backend::{Backend, BackendKind};
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::session::ModelSelection;
use nautilus_core::trainer::CycleDataView;
use nautilus_store::{IoPolicy, SharedIoStats, TensorStore};
use nautilus_util::http::{serve, Limits, Request, Response, ServerHandle};
use nautilus_util::json::Json;
use nautilus_util::{eventlog, telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker server options.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Scratch directory for per-shard feature stores.
    pub workdir: PathBuf,
    /// Accept threads (each serves one connection at a time).
    pub threads: usize,
    /// Maximum accepted request body (train requests carry datasets).
    pub max_body_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout_ms: u64,
    /// Fault injection for recovery tests: once this many trains have
    /// completed, the *next* train request kills the process (exit 3)
    /// after reading the request and before replying — the worst case for
    /// the coordinator's lease logic.
    pub crash_after_trains: Option<u64>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            addr: "127.0.0.1:0".into(),
            workdir: std::env::temp_dir().join("nautilus-dist-worker"),
            threads: 2,
            max_body_bytes: 256 << 20,
            read_timeout_ms: 60_000,
            crash_after_trains: None,
        }
    }
}

struct WorkerState {
    workdir: PathBuf,
    trains_done: AtomicU64,
    trains_failed: AtomicU64,
    shard_seq: AtomicU64,
    busy: AtomicBool,
    crash_after_trains: Option<u64>,
}

/// Starts the worker server; returns once the listener is bound.
pub fn run_worker(opts: WorkerOptions) -> std::io::Result<ServerHandle> {
    telemetry::init_from_env();
    eventlog::init_from_env();
    std::fs::create_dir_all(&opts.workdir)?;
    let listener = std::net::TcpListener::bind(&opts.addr)?;
    let state = Arc::new(WorkerState {
        workdir: opts.workdir.clone(),
        trains_done: AtomicU64::new(0),
        trains_failed: AtomicU64::new(0),
        shard_seq: AtomicU64::new(0),
        busy: AtomicBool::new(false),
        crash_after_trains: opts.crash_after_trains,
    });
    let limits = Limits { max_head_bytes: 16 * 1024, max_body_bytes: opts.max_body_bytes };
    let read_timeout = Duration::from_millis(opts.read_timeout_ms.max(1));
    serve(
        listener,
        limits,
        read_timeout,
        opts.threads,
        Arc::new(move |req: &Request| route(req, &state)),
    )
}

fn route(req: &Request, state: &WorkerState) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::obj([
                ("ok", Json::Bool(true)),
                ("wire_version", Json::Num(proto::WIRE_VERSION as f64)),
            ]),
        ),
        ("GET", "/work/status") => {
            let busy = state.busy.load(Ordering::SeqCst);
            Response::json(
                200,
                &Json::obj([
                    ("state", Json::Str(if busy { "training" } else { "idle" }.into())),
                    (
                        "shards_done",
                        Json::Num(state.trains_done.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "shards_failed",
                        Json::Num(state.trains_failed.load(Ordering::SeqCst) as f64),
                    ),
                ]),
            )
        }
        ("POST", "/work/probe") => {
            Response::text(200, "application/octet-stream", req.body.clone())
        }
        ("POST", "/work/train") => handle_train(req, state),
        ("GET" | "POST", _) => Response::error(404, "unknown route"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Resets the busy flag even when training panics or errors out.
struct BusyGuard<'a>(&'a AtomicBool);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

fn handle_train(req: &Request, state: &WorkerState) -> Response {
    // Fault injection: die mid-lease, after the coordinator has committed
    // the shard to us but before any reply — its retry path must reassign.
    if let Some(n) = state.crash_after_trains {
        if state.trains_done.load(Ordering::SeqCst) >= n {
            eventlog::warn("dist.worker_crash_injected", &[("after_trains", eventlog::Value::U64(n))]);
            std::process::exit(3);
        }
    }
    state.busy.store(true, Ordering::SeqCst);
    let _guard = BusyGuard(&state.busy);
    let seq = state.shard_seq.fetch_add(1, Ordering::SeqCst);
    match train_shard(req, state, seq) {
        Ok(body) => Response::text(200, "application/octet-stream", body),
        Err(e) => {
            state.trains_failed.fetch_add(1, Ordering::SeqCst);
            eventlog::warn("dist.worker_train_error", &[("error", eventlog::Value::Str(&e.1))]);
            Response::error(e.0, &e.1)
        }
    }
}

fn train_shard(
    req: &Request,
    state: &WorkerState,
    seq: u64,
) -> Result<Vec<u8>, (u16, String)> {
    let _sp = telemetry::span("dist", "dist.train");
    let spec = proto::decode_train_request(&req.body)
        .map_err(|e| (400u16, format!("decode: {e}")))?;

    // Bit-identity prerequisites: the worker computes with the same GEMM
    // kernel and thread-pool request as the coordinator's config asks for.
    if let Some(kind) = nautilus_tensor::ops::gemm::KernelKind::parse(&spec.config.gemm_kernel) {
        nautilus_tensor::ops::gemm::set_kernel_preference(kind);
    }
    if spec.config.threads > 0 {
        let _ = nautilus_util::pool::request_threads(spec.config.threads);
    }

    // Rebuild the deterministic unit list from the shipped inputs; the
    // resulting plan graphs are byte-identical to the coordinator's.
    let multi = MultiModelGraph::build(&spec.candidates);
    let units =
        ModelSelection::build_units(&multi, &spec.candidates, &spec.config, spec.strategy, &spec.v)
            .map_err(|e| (422u16, format!("build_units: {e}")))?;
    let Some((unit, plan)) = units.get(spec.unit_index) else {
        return Err((
            422,
            format!("unit index {} out of range ({} units)", spec.unit_index, units.len()),
        ));
    };

    // Fresh per-shard feature store; replaying chunks in manifest order
    // reproduces the coordinator's chunk boundaries (and thus identical
    // prefetch/read behavior).
    let io = SharedIoStats::new();
    let mut store = TensorStore::open(state.workdir.join(format!("shard-{seq}")), io.clone())
        .map_err(|e| (500u16, format!("store: {e}")))?;
    store.set_page_cache_bytes(spec.config.hardware.page_cache_bytes);
    store.set_io_policy(IoPolicy {
        prefetch: spec.config.io.prefetch,
        io_threads: spec.config.io.io_threads,
        write_behind: spec.config.io.write_behind,
        read_delay_ms: spec.config.io.read_delay_ms,
    });
    for (key, tensor) in &spec.features {
        store.append(key, tensor).map_err(|e| (500u16, format!("store append: {e}")))?;
    }
    store.flush_writes().map_err(|e| (500u16, format!("store flush: {e}")))?;

    let mut backend = Backend::new(BackendKind::Real, spec.config.hardware, io);
    let data = CycleDataView::Real { train: &spec.train, valid: &spec.valid };
    let (results, trained) = nautilus_core::trainer::train_unit_retaining(
        &multi,
        plan,
        unit,
        &spec.candidates,
        &data,
        &store,
        &mut backend,
        spec.strategy.full_checkpoints(),
        spec.config.shuffle_each_epoch,
    )
    .map_err(|e| (500u16, format!("train: {e}")))?;

    state.trains_done.fetch_add(1, Ordering::SeqCst);
    eventlog::info(
        "dist.shard_trained",
        &[
            ("unit", eventlog::Value::U64(spec.unit_index as u64)),
            ("members", eventlog::Value::U64(results.len() as u64)),
        ],
    );
    Ok(proto::encode_train_response(
        spec.unit_index,
        backend.busy_secs(),
        backend.total_flops(),
        &results,
        trained.as_ref(),
    ))
}
