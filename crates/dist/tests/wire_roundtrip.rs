//! Checkpoint wire round-trips are bit-exact.
//!
//! The distributed plane's bit-identity contract rests on checkpoints
//! surviving the wire unchanged: candidate graphs ship coordinator→worker
//! inside train requests, trained plan graphs ship back inside responses,
//! and the serving plane's adapter/head deltas must survive the same
//! byte-level transport. Each test round-trips through the full encode →
//! bytes → DTO → bytes → decode path and compares every parameter tensor
//! bit for bit.

use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::Strategy;
use nautilus_data::Dataset;
use nautilus_dist::proto;
use nautilus_dnn::delta::{
    apply_delta, extract_delta, load_delta_from_bytes, save_delta_to_bytes, strip_trainable,
};
use nautilus_dnn::{checkpoint, ModelGraph};
use nautilus_tensor::Tensor;
use std::collections::BTreeSet;

/// Asserts two graphs are structurally equal with bit-identical params.
fn assert_graphs_bit_identical(a: &ModelGraph, b: &ModelGraph, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: node count");
    for i in 0..a.len() {
        let (na, nb) = (a.node(nautilus_dnn::NodeId(i)), b.node(nautilus_dnn::NodeId(i)));
        assert_eq!(na.params.len(), nb.params.len(), "{what}: node {i} param count");
        for (pi, (pa, pb)) in na.params.iter().zip(&nb.params).enumerate() {
            assert_eq!(pa.shape(), pb.shape(), "{what}: node {i} param {pi} shape");
            let bits_a: Vec<u32> = pa.data().iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u32> = pb.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "{what}: node {i} param {pi} bits");
        }
    }
}

fn tiny_datasets() -> (Dataset, Dataset) {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let pool = spec.ner_config().generate(12);
    pool.split_at(8)
}

#[test]
fn train_request_round_trips_candidate_graphs_bit_exactly() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(2);
    let (train, valid) = tiny_datasets();

    let config = nautilus_core::SystemConfig::tiny();
    let graph_blocks: Vec<Vec<u8>> =
        candidates.iter().map(|c| checkpoint::save_to_bytes(&c.graph)).collect();
    let data_block = proto::encode_data_block(&train, &valid);
    let v = BTreeSet::new();
    let bytes = proto::encode_train_request(
        Strategy::CurrentPractice,
        1,
        256,
        &v,
        &config,
        &candidates,
        &data_block,
        &graph_blocks,
        &[],
    );
    let back = proto::decode_train_request(&bytes).expect("decodes");

    assert_eq!(back.unit_index, 1);
    assert_eq!(back.strategy, Strategy::CurrentPractice);
    assert_eq!(back.candidates.len(), candidates.len());
    for (orig, rt) in candidates.iter().zip(&back.candidates) {
        assert_eq!(orig.name, rt.name);
        assert_eq!(orig.hyper, rt.hyper);
        assert_graphs_bit_identical(&orig.graph, &rt.graph, &orig.name);
    }
    // Dataset tensors survive exactly too (raw f32 bit transport).
    let pairs: [(&Tensor, &Tensor); 4] = [
        (&train.inputs, &back.train.inputs),
        (&train.labels, &back.train.labels),
        (&valid.inputs, &back.valid.inputs),
        (&valid.labels, &back.valid.labels),
    ];
    for (a, b) in pairs {
        assert_eq!(a.shape(), b.shape());
        let bits_a: Vec<u32> = a.data().iter().map(|x| x.to_bits()).collect();
        let bits_b: Vec<u32> = b.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }
}

#[test]
fn feature_chunks_round_trip_in_manifest_order() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(1);
    let (train, valid) = tiny_datasets();
    let config = nautilus_core::SystemConfig::tiny();

    let t1 = Tensor::from_vec([2, 2], vec![0.5f32, -1.25, 3.75, 0.125]).unwrap();
    let t2 = Tensor::from_vec([3, 1], vec![9.0f32, -0.0, f32::MIN_POSITIVE]).unwrap();
    let features = vec![
        ("enc0:train".to_string(), 2u64, nautilus_tensor::ser::encode(&t1)),
        ("enc0:valid".to_string(), 3u64, nautilus_tensor::ser::encode(&t2)),
    ];
    let graph_blocks: Vec<Vec<u8>> =
        candidates.iter().map(|c| checkpoint::save_to_bytes(&c.graph)).collect();
    let bytes = proto::encode_train_request(
        Strategy::Nautilus,
        0,
        256,
        &BTreeSet::new(),
        &config,
        &candidates,
        &proto::encode_data_block(&train, &valid),
        &graph_blocks,
        &features,
    );
    let back = proto::decode_train_request(&bytes).expect("decodes");
    assert_eq!(back.features.len(), 2);
    assert_eq!(back.features[0].0, "enc0:train");
    assert_eq!(back.features[1].0, "enc0:valid");
    let b1: Vec<u32> = back.features[0].1.data().iter().map(|x| x.to_bits()).collect();
    assert_eq!(b1, t1.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    let b2: Vec<u32> = back.features[1].1.data().iter().map(|x| x.to_bits()).collect();
    assert_eq!(b2, t2.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>());
}

#[test]
fn trained_graph_and_adapter_deltas_survive_the_wire() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(1);
    let graph = candidates.remove(0).graph;

    // Response path: trained graph rides a framed train response.
    let bytes = proto::encode_train_response(0, 1.5, 2.5e9, &[], Some(&graph));
    let back = proto::decode_train_response(&bytes).expect("decodes");
    let rt = back.trained.expect("trained graph present");
    assert_graphs_bit_identical(&graph, &rt, "trained graph");

    // Serving path: extract the trainable (adapter/head) delta from the
    // wire-restored graph, round-trip the delta bytes, and re-apply onto
    // the stripped base — the recomposed graph must match the original
    // bit for bit (same contract the multi-tenant registry relies on).
    let delta = extract_delta(&rt).expect("graph has trainable layers");
    let delta_bytes = save_delta_to_bytes(&delta);
    let delta_rt = load_delta_from_bytes(&delta_bytes).expect("delta decodes");
    assert_eq!(delta.base_sig, delta_rt.base_sig);
    let base = strip_trainable(&rt);
    let recomposed = apply_delta(&base, &delta_rt).expect("delta applies");
    assert_graphs_bit_identical(&graph, &recomposed, "recomposed from delta");
}
