//! Multi-process loopback integration: distributed selection is
//! bit-identical to a single box, and survives a worker death mid-lease.
//!
//! Workers run as real subprocesses of the `nautilus-dist` binary (Cargo
//! exposes its path via `CARGO_BIN_EXE_nautilus-dist`), so this exercises
//! the full stack: process spawn, HTTP over loopback, framed wire codec,
//! worker-side plan rebuild, and the coordinator's lease/retry scheduler.

use nautilus_core::session::{CycleInput, ModelSelection};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::{BackendKind, CandidateModel, Strategy, SystemConfig};
use nautilus_data::Dataset;
use nautilus_dist::{run_search, DistJob};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(workdir: PathBuf, crash_after_trains: Option<u64>) -> WorkerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nautilus-dist"));
    cmd.arg("worker")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workdir")
        .arg(&workdir)
        .stdout(Stdio::piped());
    if let Some(n) = crash_after_trains {
        cmd.arg("--crash-after-trains").arg(n.to_string());
    }
    let mut child = cmd.spawn().expect("worker spawns");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line).expect("LISTEN line");
    let addr = line.trim().strip_prefix("LISTEN ").expect("LISTEN prefix").to_string();
    WorkerProc { child, addr }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nautilus-dist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn workload() -> (Vec<CandidateModel>, Dataset, Dataset) {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut candidates = spec.candidates().expect("workload builds");
    candidates.truncate(3);
    let pool = spec.ner_config().generate(60);
    let (train, valid) = pool.split_at(48);
    (candidates, train, valid)
}

type AccBits = Vec<(String, Option<u32>)>;

fn bits(acc: &[(String, Option<f32>)]) -> AccBits {
    acc.iter().map(|(n, a)| (n.clone(), a.map(f32::to_bits))).collect()
}

fn single_box(
    candidates: &[CandidateModel],
    strategy: Strategy,
    train: &Dataset,
    valid: &Dataset,
    dir: PathBuf,
) -> (AccBits, Option<(String, u32)>) {
    let mut session = ModelSelection::new(
        candidates.to_vec(),
        SystemConfig::tiny(),
        strategy,
        BackendKind::Real,
        dir,
    )
    .expect("session initializes");
    let report = session
        .fit(CycleInput::Real { train: train.clone(), valid: valid.clone() })
        .expect("cycle runs");
    (bits(&report.accuracies), report.best.map(|(n, a)| (n, a.to_bits())))
}

#[test]
fn distributed_selection_is_bit_identical_to_single_box() {
    let dir = scratch("ident");
    let (candidates, train, valid) = workload();

    // Ground truth; CurrentPractice yields three independent units, so two
    // workers genuinely interleave shards.
    let (sb_acc, sb_best) = single_box(
        &candidates,
        Strategy::CurrentPractice,
        &train,
        &valid,
        dir.join("single"),
    );

    let w1 = spawn_worker(dir.join("w1"), None);
    let w2 = spawn_worker(dir.join("w2"), None);
    let job = DistJob {
        candidates: candidates.clone(),
        config: SystemConfig::tiny(),
        strategy: Strategy::CurrentPractice,
        train: train.clone(),
        valid: valid.clone(),
    };
    let rep = run_search(&job, &[w1.addr.clone(), w2.addr.clone()], &dir.join("coord"))
        .expect("distributed run succeeds");

    assert_eq!(rep.units, 3, "current practice shards one unit per candidate");
    assert_eq!(bits(&rep.accuracies), sb_acc, "accuracies must match bit for bit");
    assert_eq!(
        rep.best.map(|(n, a)| (n, a.to_bits())),
        sb_best,
        "best pick must match bit for bit"
    );
    assert!(rep.best_trained.is_some(), "winner's trained graph comes home");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nautilus_strategy_ships_features_and_stays_bit_identical() {
    let dir = scratch("feat");
    let (candidates, train, valid) = workload();
    let (sb_acc, sb_best) =
        single_box(&candidates, Strategy::Nautilus, &train, &valid, dir.join("single"));

    let w1 = spawn_worker(dir.join("w1"), None);
    let w2 = spawn_worker(dir.join("w2"), None);
    let job = DistJob {
        candidates,
        config: SystemConfig::tiny(),
        strategy: Strategy::Nautilus,
        train,
        valid,
    };
    let rep = run_search(&job, &[w1.addr.clone(), w2.addr.clone()], &dir.join("coord"))
        .expect("distributed run succeeds");
    assert_eq!(bits(&rep.accuracies), sb_acc);
    assert_eq!(rep.best.map(|(n, a)| (n, a.to_bits())), sb_best);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_death_mid_lease_reassigns_and_answer_is_unchanged() {
    let dir = scratch("kill");
    let (candidates, train, valid) = workload();
    let (sb_acc, _) = single_box(
        &candidates,
        Strategy::CurrentPractice,
        &train,
        &valid,
        dir.join("single"),
    );

    // First worker dies on its first train request — after accepting the
    // lease, before replying. The survivor must absorb its shards.
    let w_crash = spawn_worker(dir.join("wc"), Some(0));
    let w_ok = spawn_worker(dir.join("wk"), None);
    let job = DistJob {
        candidates,
        config: SystemConfig::tiny(),
        strategy: Strategy::CurrentPractice,
        train,
        valid,
    };
    let rep = run_search(&job, &[w_crash.addr.clone(), w_ok.addr.clone()], &dir.join("coord"))
        .expect("run survives the worker death");

    assert!(rep.retries >= 1, "the broken lease must be retried");
    assert_eq!(rep.workers_alive, 1, "the crashed worker leaves the pool");
    assert_eq!(bits(&rep.accuracies), sb_acc, "recovery must not change the answer");
    let _ = std::fs::remove_dir_all(&dir);
}
