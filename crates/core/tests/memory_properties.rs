//! Property tests for the peak-memory estimator (paper §4.3.3).

use nautilus_core::mat_opt::{no_reuse_plan, plan_given_v};
use nautilus_core::memory::estimate_peak_memory;
use nautilus_core::multimodel::MultiModelGraph;
use nautilus_core::spec::{CandidateModel, Hyper};
use nautilus_core::SystemConfig;
use nautilus_dnn::{OptimizerSpec, TaskKind};
use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
use nautilus_models::BuildScale;
use nautilus_util::prop::{prop_check, usizes};
use nautilus_util::{prop_assert, prop_assert_eq};
use std::collections::BTreeSet;

const CASES: u32 = 16;

fn candidate(strategy_idx: usize, id: usize) -> CandidateModel {
    let cfg = BertConfig::tiny(8, 40);
    let strategy = FeatureStrategy::ALL[strategy_idx % FeatureStrategy::ALL.len()];
    CandidateModel {
        name: format!("c{id}-{}", strategy.label()),
        graph: feature_transfer_model(&cfg, strategy, 5, BuildScale::Real).unwrap(),
        hyper: Hyper { batch_size: 8, epochs: 1, optimizer: OptimizerSpec::adam(0.01) },
        task: TaskKind::TokenTagging,
    }
}

/// Activation memory is exactly linear in batch size; parameter and
/// workspace terms are batch-independent.
#[test]
fn activations_scale_linearly_with_batch() {
    let gen = (usizes(0..6), usizes(1..16), usizes(2..5));
    prop_check(0xC04E_0001, CASES, &gen, |&(sidx, batch, factor)| {
        let cands = vec![candidate(sidx, 0)];
        let multi = MultiModelGraph::build(&cands);
        let plan = no_reuse_plan(&multi, &[0], &SystemConfig::tiny());
        let a = estimate_peak_memory(&multi, &plan.actions, batch, 77, 2.0);
        let b = estimate_peak_memory(&multi, &plan.actions, batch * factor, 77, 2.0);
        prop_assert_eq!(b.activation_bytes, a.activation_bytes * factor as u64);
        prop_assert_eq!(a.params_bytes, b.params_bytes);
        prop_assert_eq!(a.optimizer_bytes, b.optimizer_bytes);
        prop_assert_eq!(a.workspace_bytes, 77);
        Ok(())
    });
}

/// The peak is bounded below by the largest single retained activation
/// and bounded above by keeping everything live at once.
#[test]
fn peak_between_trivial_bounds() {
    let gen = (usizes(0..6), usizes(1..8));
    prop_check(0xC04E_0002, CASES, &gen, |&(sidx, batch)| {
        let cands = vec![candidate(sidx, 0)];
        let multi = MultiModelGraph::build(&cands);
        let plan = no_reuse_plan(&multi, &[0], &SystemConfig::tiny());
        let est = estimate_peak_memory(&multi, &plan.actions, batch, 0, 0.0);
        let max_single: u64 = multi
            .nodes
            .iter()
            .map(|n| n.profile.internal_bytes)
            .max()
            .unwrap_or(0)
            * batch as u64;
        // Upper bound: every forward internal + every gradient live at once.
        let upper: u64 = multi
            .nodes
            .iter()
            .map(|n| 2 * n.profile.internal_bytes)
            .sum::<u64>()
            * batch as u64;
        prop_assert!(
            est.activation_bytes >= max_single,
            "peak {} below largest tensor {max_single}",
            est.activation_bytes
        );
        prop_assert!(
            est.activation_bytes <= upper,
            "peak {} above keep-everything bound {upper}",
            est.activation_bytes
        );
        Ok(())
    });
}

/// The analytical estimate tracks the *measured* retention of a real
/// forward pass within a constant factor (§5.3's "accurate enough to
/// avoid out-of-memory crashes"). The real executor clones layer inputs
/// into its backward caches, so the measurement can legitimately exceed
/// the zero-copy model — but never by more than ~4x, and the estimate
/// must never be under 1/4 of reality.
#[test]
fn estimate_tracks_measured_retention() {
    let gen = (usizes(0..6), usizes(1..5));
    prop_check(0xC04E_0003, CASES, &gen, |&(sidx, batch)| {
        use nautilus_dnn::exec::{forward, BatchInputs};
        use nautilus_tensor::Tensor;
        let cands = vec![candidate(sidx, 0)];
        let multi = MultiModelGraph::build(&cands);
        let plan = no_reuse_plan(&multi, &[0], &SystemConfig::tiny());
        let est = estimate_peak_memory(&multi, &plan.actions, batch, 0, 0.0);

        let g = &cands[0].graph;
        let input = g.input_ids()[0];
        let ids: Vec<f32> = (0..batch * 8).map(|i| (i % 40) as f32).collect();
        let mut inputs = BatchInputs::new();
        inputs.insert(input, Tensor::from_vec([batch, 8], ids).unwrap());
        let fwd = forward(g, &inputs, true).unwrap();
        let measured = fwd.retained_activation_bytes() as u64;

        prop_assert!(
            est.activation_bytes * 4 >= measured,
            "estimate {} too far below measured {measured}",
            est.activation_bytes
        );
        prop_assert!(
            measured * 4 >= est.activation_bytes,
            "estimate {} too far above measured {measured}",
            est.activation_bytes
        );
        Ok(())
    });
}

/// Fusing more members never reduces the estimated peak (the fused plan
/// strictly contains each member's plan when nothing is materialized).
#[test]
fn fused_memory_dominates_members() {
    let gen = (usizes(0..6), usizes(0..6), usizes(1..8));
    prop_check(0xC04E_0004, CASES, &gen, |&(s1, s2, batch)| {
        let cands = vec![candidate(s1, 0), candidate(s2, 1)];
        let multi = MultiModelGraph::build(&cands);
        let cfg = SystemConfig::tiny();
        let v = BTreeSet::new();
        let fused = plan_given_v(&multi, &[0, 1], &v, &cfg);
        let est_fused = estimate_peak_memory(&multi, &fused.actions, batch, 0, 2.0);
        for i in 0..2 {
            let solo = plan_given_v(&multi, &[i], &v, &cfg);
            let est_solo = estimate_peak_memory(&multi, &solo.actions, batch, 0, 2.0);
            prop_assert!(
                est_fused.total() >= est_solo.total(),
                "fused {} < member {i} solo {}",
                est_fused.total(),
                est_solo.total()
            );
        }
        Ok(())
    });
}
