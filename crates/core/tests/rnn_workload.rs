//! End-to-end model selection over *recurrent* source models (unrolled in
//! time, paper §2.5): the whole Nautilus pipeline — profiling, multi-model
//! merge, MILP, fusion, incremental materialization, fused training — must
//! work unchanged on the unrolled DAGs, with the same logical-equivalence
//! guarantee.

use nautilus_core::session::{CycleInput, ModelSelection};
use nautilus_core::spec::{CandidateModel, Hyper};
use nautilus_core::{BackendKind, Strategy, SystemConfig};
use nautilus_data::Dataset;
use nautilus_dnn::{OptimizerSpec, TaskKind};
use nautilus_models::rnn::{sequence_classifier, RnnEncoderConfig};
use nautilus_models::BuildScale;
use nautilus_tensor::init::{randn, seeded_rng};
use nautilus_tensor::Tensor;
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-rnn-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A learnable sequence-classification pool: the label is the sign of
/// feature 0 at the final step (recency-weighted, so a random frozen
/// recurrent encoder retains the signal in its final hidden state).
fn sequence_pool(n: usize, steps: usize) -> Dataset {
    let mut rng = seeded_rng(41);
    let inputs = randn([n, steps, 8], 1.0, &mut rng);
    let labels: Vec<f32> = (0..n)
        .map(|r| {
            let last = inputs.data()[(r * steps + steps - 1) * 8];
            if last > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Dataset::new(inputs, Tensor::from_vec([n], labels).unwrap()).unwrap()
}

fn candidates() -> Vec<CandidateModel> {
    let cfg = RnnEncoderConfig::tiny(6);
    [0.05f32, 0.02, 0.01]
        .iter()
        .map(|&lr| CandidateModel {
            name: format!("rnn-lr{lr}"),
            graph: sequence_classifier(&cfg, 2, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 3, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::Classification,
        })
        .collect()
}

fn run(strategy: Strategy, tag: &str) -> Vec<Vec<(String, Option<f32>)>> {
    let mut cfg = SystemConfig::tiny();
    // Favor loading so the optimizer actually cuts the recurrence.
    cfg.planner.flops_per_sec = 5e7;
    let mut session = ModelSelection::new(
        candidates(),
        cfg,
        strategy,
        BackendKind::Real,
        workdir(tag),
    )
    .unwrap();
    let pool = sequence_pool(64, 6);
    let mut out = Vec::new();
    for cycle in 0..2 {
        let batch = pool.range(cycle * 32, (cycle + 1) * 32);
        let (train, valid) = batch.split_at(24);
        let r = session.fit(CycleInput::Real { train, valid }).unwrap();
        let mut a = r.accuracies;
        a.sort_by(|x, y| x.0.cmp(&y.0));
        out.push(a);
    }
    out
}

#[test]
fn rnn_workload_equivalence_and_materialization() {
    let base = run(Strategy::CurrentPractice, "cp");
    let opt = run(Strategy::Nautilus, "nau");
    assert_eq!(base, opt, "unrolled-RNN accuracies must match exactly");
}

#[test]
fn optimizer_cuts_the_unrolled_recurrence() {
    let mut cfg = SystemConfig::tiny();
    cfg.planner.flops_per_sec = 5e7;
    let session = ModelSelection::new(
        candidates(),
        cfg,
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("cut"),
    )
    .unwrap();
    // The final hidden state is materialized; every unit loads it and
    // prunes the unrolled steps below.
    assert!(session.init_report().num_materialized >= 1);
    let mut found_load = false;
    for (unit, plan) in session.units() {
        if !plan.materialized_keys().is_empty() {
            found_load = true;
            // Loaded feature replaces at least some of the unroll: the plan
            // graph must be smaller than the candidate graph.
            assert!(plan.graph.len() < session.candidates()[unit.members[0]].graph.len());
        }
    }
    assert!(found_load, "expected at least one unit to load the hidden state");
}

#[test]
fn rnn_head_learns_the_sequence_task() {
    let mut session = ModelSelection::new(
        candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("learn"),
    )
    .unwrap();
    let pool = sequence_pool(160, 6);
    let mut last = 0.0f32;
    for cycle in 0..2 {
        let batch = pool.range(cycle * 80, (cycle + 1) * 80);
        let (train, valid) = batch.split_at(64);
        let r = session.fit(CycleInput::Real { train, valid }).unwrap();
        last = r.best.unwrap().1;
    }
    assert!(last > 0.6, "sequence accuracy {last}");
}
