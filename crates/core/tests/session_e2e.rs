//! End-to-end session tests: every strategy over multiple labeling cycles,
//! on both backends.

use nautilus_core::session::{CycleInput, ModelSelection};
use nautilus_core::workloads::{Scale, WorkloadKind, WorkloadSpec};
use nautilus_core::{BackendKind, Strategy, SystemConfig};
use nautilus_data::Dataset;
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "nautilus-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small FTR-style workload: 4 candidates (2 strategies × 2 lrs).
fn small_candidates() -> Vec<nautilus_core::CandidateModel> {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut cands = spec.candidates().unwrap();
    cands.truncate(4);
    cands
}

fn tiny_pool(n: usize) -> Dataset {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    spec.ner_config().generate(n)
}

fn run_real(strategy: Strategy, tag: &str) -> Vec<Vec<(String, Option<f32>)>> {
    let mut session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        strategy,
        BackendKind::Real,
        workdir(tag),
    )
    .unwrap();
    let pool = tiny_pool(60);
    let mut reports = Vec::new();
    for cycle in 0..2 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        let r = session.fit(CycleInput::Real { train, valid }).unwrap();
        assert_eq!(r.cycle, cycle + 1);
        assert!(r.best.is_some());
        reports.push(r.accuracies);
    }
    reports
}

#[test]
fn all_strategies_agree_on_accuracy_real_backend() {
    // The paper's Fig 7 claim: Nautilus performs logically equivalent SGD
    // training, so every strategy must produce identical validation
    // accuracies for every candidate in every cycle.
    let baseline = run_real(Strategy::CurrentPractice, "cp");
    for (strategy, tag) in [
        (Strategy::MatAll, "matall"),
        (Strategy::MatOnly, "matonly"),
        (Strategy::FuseOnly, "fuseonly"),
        (Strategy::Nautilus, "nautilus"),
    ] {
        let got = run_real(strategy, tag);
        assert_eq!(baseline.len(), got.len());
        for (cycle, (b, g)) in baseline.iter().zip(&got).enumerate() {
            let mut b = b.clone();
            let mut g = g.clone();
            b.sort_by(|x, y| x.0.cmp(&y.0));
            g.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(b, g, "strategy {strategy:?} cycle {cycle}");
        }
    }
}

#[test]
fn accuracy_improves_with_more_labeled_data() {
    let mut session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("learning"),
    )
    .unwrap();
    let pool = tiny_pool(120);
    let mut best = Vec::new();
    for cycle in 0..3 {
        let batch = pool.range(cycle * 40, (cycle + 1) * 40);
        let (train, valid) = batch.split_at(32);
        let r = session.fit(CycleInput::Real { train, valid }).unwrap();
        best.push(r.best.unwrap().1);
    }
    // Later cycles see more data; accuracy should not collapse and should
    // end above chance (9 tags -> ~0.11 chance; O-tag majority ~0.7).
    assert!(best.last().unwrap() > &0.5, "{best:?}");
}

#[test]
fn simulated_nautilus_beats_current_practice() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let mut cands = spec.candidates().unwrap();
    cands.truncate(8); // keep the test fast
    let mut times = Vec::new();
    for (strategy, tag) in
        [(Strategy::CurrentPractice, "sim-cp"), (Strategy::Nautilus, "sim-nau")]
    {
        let mut session = ModelSelection::new(
            cands.clone(),
            SystemConfig::default(),
            strategy,
            BackendKind::Simulated,
            workdir(tag),
        )
        .unwrap();
        for _ in 0..3 {
            session.fit(CycleInput::Virtual { n_train: 400, n_valid: 100 }).unwrap();
        }
        times.push(session.stats().elapsed_secs);
    }
    assert!(
        times[1] < times[0] / 1.5,
        "nautilus {}s not well below current practice {}s",
        times[1],
        times[0]
    );
}

#[test]
fn simulated_nautilus_reduces_io() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
    let mut cands = spec.candidates().unwrap();
    cands.truncate(6);
    let mut stats = Vec::new();
    for (strategy, tag) in
        [(Strategy::CurrentPractice, "io-cp"), (Strategy::Nautilus, "io-nau")]
    {
        let mut session = ModelSelection::new(
            cands.clone(),
            SystemConfig::default(),
            strategy,
            BackendKind::Simulated,
            workdir(tag),
        )
        .unwrap();
        for _ in 0..2 {
            session.fit(CycleInput::Virtual { n_train: 400, n_valid: 100 }).unwrap();
        }
        stats.push(session.stats());
    }
    assert!(
        stats[1].disk_write_bytes < stats[0].disk_write_bytes,
        "nautilus writes {} vs cp {}",
        stats[1].disk_write_bytes,
        stats[0].disk_write_bytes
    );
}

#[test]
fn exponential_backoff_doubles_r_and_rematerializes() {
    let mut cfg = SystemConfig::tiny();
    cfg.max_records = 40;
    let mut session = ModelSelection::new(
        small_candidates(),
        cfg,
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("backoff"),
    )
    .unwrap();
    assert_eq!(session.max_records(), 40);
    let pool = tiny_pool(90);
    for cycle in 0..3 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        session.fit(CycleInput::Real { train, valid }).unwrap();
    }
    // 90 records > 40: r must have doubled at least once.
    assert!(session.max_records() >= 80, "r = {}", session.max_records());
}

#[test]
fn evolving_workload_mid_session() {
    let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
    let mut session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("evolve"),
    )
    .unwrap();
    let pool = tiny_pool(90);
    let batch = pool.range(0, 30);
    let (train, valid) = batch.split_at(24);
    session.fit(CycleInput::Real { train, valid }).unwrap();

    // Swap in a different (larger) candidate set mid-session.
    let mut new_cands = spec.candidates().unwrap();
    new_cands.truncate(6);
    let report = session.update_workload(new_cands).unwrap();
    assert!(report.num_units >= 1);
    assert!(report.theoretical_speedup > 1.0);

    // The next cycle trains the *new* candidates on old + new data.
    let batch = pool.range(30, 60);
    let (train, valid) = batch.split_at(24);
    let r = session.fit(CycleInput::Real { train, valid }).unwrap();
    assert_eq!(r.accuracies.len(), 6);
    assert_eq!(r.train_records, 48);
    assert!(r.best.is_some());

    // Mismatched input shapes are rejected.
    let ftu = WorkloadSpec { kind: WorkloadKind::Ftu, scale: Scale::Tiny };
    let mut image_cands = ftu.candidates().unwrap();
    image_cands.truncate(2);
    assert!(session.update_workload(image_cands).is_err());
}

#[test]
fn virtual_input_on_real_backend_is_rejected() {
    let mut session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("mismatch"),
    )
    .unwrap();
    let r = session.fit(CycleInput::Virtual { n_train: 10, n_valid: 2 });
    assert!(r.is_err());
}

#[test]
fn save_and_restore_resumes_identically() {
    let pool = tiny_pool(90);
    let wd_a = workdir("persist-a");
    let state = std::env::temp_dir().join(format!("nautilus-state-{}", std::process::id()));

    // Uninterrupted reference: 3 cycles.
    let mut reference = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("persist-ref"),
    )
    .unwrap();
    let mut ref_accs = Vec::new();
    for cycle in 0..3 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        ref_accs.push(reference.fit(CycleInput::Real { train, valid }).unwrap().accuracies);
    }

    // Interrupted: 2 cycles, save, drop, resume, 1 more cycle.
    {
        let mut session = ModelSelection::new(
            small_candidates(),
            SystemConfig::tiny(),
            Strategy::Nautilus,
            BackendKind::Real,
            &wd_a,
        )
        .unwrap();
        for (cycle, expected) in ref_accs.iter().take(2).enumerate() {
            let batch = pool.range(cycle * 30, (cycle + 1) * 30);
            let (train, valid) = batch.split_at(24);
            let got = session.fit(CycleInput::Real { train, valid }).unwrap().accuracies;
            assert_eq!(&got, expected);
        }
        session.save_state(&state).unwrap();
    }
    let mut resumed = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        &wd_a,
    )
    .unwrap();
    resumed.restore_state(&state).unwrap();
    let batch = pool.range(60, 90);
    let (train, valid) = batch.split_at(24);
    let r = resumed.fit(CycleInput::Real { train, valid }).unwrap();
    assert_eq!(r.cycle, 3);
    assert_eq!(r.train_records, 72);
    assert_eq!(r.accuracies, ref_accs[2], "resumed cycle must match uninterrupted");
    let _ = std::fs::remove_file(&state);
}

#[test]
fn empty_cycle_retrains_on_existing_snapshot() {
    let mut session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("empty-cycle"),
    )
    .unwrap();
    let pool = tiny_pool(30);
    let (train, valid) = pool.split_at(24);
    let r1 = session.fit(CycleInput::Real { train, valid }).unwrap();
    // A cycle with zero new labels still re-runs model selection on the
    // unchanged snapshot (e.g. the labeler produced nothing this round).
    let empty_in = pool.range(0, 0);
    let empty_lab = pool.range(0, 0);
    let r2 = session
        .fit(CycleInput::Real { train: empty_in, valid: empty_lab })
        .unwrap();
    assert_eq!(r2.train_records, r1.train_records);
    assert_eq!(r2.cycle, 2);
    // Deterministic retraining from initial checkpoints: same accuracies.
    assert_eq!(r1.accuracies, r2.accuracies);
}

#[test]
fn init_report_phases_populated() {
    let session = ModelSelection::new(
        small_candidates(),
        SystemConfig::tiny(),
        Strategy::Nautilus,
        BackendKind::Simulated,
        workdir("init"),
    )
    .unwrap();
    let init = session.init_report();
    assert!(init.total_secs > 0.0);
    assert!(init.theoretical_speedup > 1.0);
    assert!(init.num_units >= 1);
    assert!(session.milp_stats().is_some());
}

#[test]
fn feature_store_respects_disk_budget() {
    // Generous planner-compute so the optimizer wants to materialize, but a
    // tight budget caps what it may choose.
    let mut cfg = SystemConfig::tiny();
    cfg.planner.flops_per_sec = 1e9;
    cfg.disk_budget_bytes = 200 * 1024; // 200 KiB
    cfg.max_records = 64;
    let mut session = ModelSelection::new(
        small_candidates(),
        cfg.clone(),
        Strategy::Nautilus,
        BackendKind::Real,
        workdir("budget"),
    )
    .unwrap();
    let pool = tiny_pool(60);
    for cycle in 0..2 {
        let batch = pool.range(cycle * 30, (cycle + 1) * 30);
        let (train, valid) = batch.split_at(24);
        session.fit(CycleInput::Real { train, valid }).unwrap();
    }
    assert!(
        session.feature_bytes() <= cfg.disk_budget_bytes + 4096,
        "{} bytes exceeds budget {}",
        session.feature_bytes(),
        cfg.disk_budget_bytes
    );
}
