//! The multi-model graph (paper §4.1, Def 4.4).
//!
//! All candidate models are merged into one information graph by unifying
//! *materializable identical sub-expressions*: two nodes merge iff they are
//! materializable (Def 2.4) and their expression signatures (Def 4.3 —
//! layer type, configuration, parameter values, and parents' signatures)
//! are equal. Trainable and gradient-carrying nodes are never merged — each
//! model keeps its own.
//!
//! The builder also computes a *graph signature* per candidate. Candidates
//! with equal graph signatures (same architecture, same freezing, same
//! initial parameters — e.g. grid points differing only in learning rate or
//! batch size) are interchangeable for planning purposes; the MILP groups
//! them into one weighted block, an exact reduction that keeps solver
//! instances small.

use crate::profiler::{profile_graph, NodeProfile};
use crate::spec::CandidateModel;
use nautilus_dnn::NodeId;
use nautilus_tensor::Shape;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Index of a merged node in the [`MultiModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MNodeId(pub usize);

impl MNodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One merged node.
#[derive(Debug, Clone)]
pub struct MNode {
    /// Expression signature (shared nodes: the signature they merged on).
    pub sig: u64,
    /// Stable store key for materialized outputs of this expression.
    pub key: String,
    /// Exemplar name (diagnostics).
    pub name: String,
    /// Materializable per Def 2.4 (uniform across all models it appears in).
    pub materializable: bool,
    /// This is a raw model input placeholder.
    pub is_input: bool,
    /// Parent merged nodes, in layer-argument order.
    pub parents: Vec<MNodeId>,
    /// Exemplar `(model index, node id)` to fetch kind/params at plan time.
    pub exemplar: (usize, NodeId),
    /// Per-record profile of the exemplar node.
    pub profile: NodeProfile,
}

impl MNode {
    /// Per-record output shape.
    pub fn out_shape(&self) -> &Shape {
        &self.profile.out_shape
    }
}

/// Mapping of one candidate into the merged graph.
#[derive(Debug, Clone)]
pub struct ModelMapping {
    /// Merged node for each of the candidate's graph nodes (by index).
    pub node_to_merged: Vec<MNodeId>,
    /// Merged output nodes of this candidate.
    pub outputs: Vec<MNodeId>,
    /// Whole-graph signature for interchangeability grouping.
    pub graph_sig: u64,
}

/// The multi-model graph over a candidate set.
#[derive(Debug, Clone)]
pub struct MultiModelGraph {
    /// Merged nodes in a topological order.
    pub nodes: Vec<MNode>,
    /// Per-candidate mappings, aligned with the candidate list.
    pub mappings: Vec<ModelMapping>,
}

impl MultiModelGraph {
    /// Builds the multi-model graph for a candidate set.
    pub fn build(candidates: &[CandidateModel]) -> Self {
        let mut nodes: Vec<MNode> = Vec::new();
        let mut by_sig: HashMap<u64, MNodeId> = HashMap::new();
        let mut mappings = Vec::with_capacity(candidates.len());

        for (mi, cand) in candidates.iter().enumerate() {
            let sigs = cand.graph.expr_signatures();
            let profiles = profile_graph(&cand.graph);
            let mut node_to_merged = Vec::with_capacity(cand.graph.len());
            for id in cand.graph.ids() {
                let node = cand.graph.node(id);
                let profile = &profiles[id.index()];
                let sig = sigs[id.index()];
                let merged = if profile.materializable {
                    if let Some(&m) = by_sig.get(&sig) {
                        Some(m)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let mid = match merged {
                    Some(m) => m,
                    None => {
                        let mid = MNodeId(nodes.len());
                        let parents = node
                            .inputs
                            .iter()
                            .map(|p| node_to_merged[p.index()])
                            .collect();
                        nodes.push(MNode {
                            sig,
                            key: format!("mat-{sig:016x}"),
                            name: node.name.clone(),
                            materializable: profile.materializable,
                            is_input: matches!(
                                node.kind,
                                nautilus_dnn::LayerKind::Input { .. }
                            ),
                            parents,
                            exemplar: (mi, id),
                            profile: profile.clone(),
                        });
                        if profile.materializable {
                            by_sig.insert(sig, mid);
                        }
                        mid
                    }
                };
                node_to_merged.push(mid);
            }
            let outputs = cand
                .graph
                .outputs()
                .iter()
                .map(|o| node_to_merged[o.index()])
                .collect();
            let graph_sig = graph_signature(&sigs, cand.graph.outputs(), cand.hyper.epochs);
            mappings.push(ModelMapping { node_to_merged, outputs, graph_sig });
        }
        MultiModelGraph { nodes, mappings }
    }

    /// The materialization candidate set `U`: materializable merged nodes
    /// that are not raw inputs.
    pub fn mat_candidates(&self) -> Vec<MNodeId> {
        (0..self.nodes.len())
            .map(MNodeId)
            .filter(|&m| {
                let n = &self.nodes[m.index()];
                n.materializable && !n.is_input
            })
            .collect()
    }

    /// Groups candidate indices by interchangeable graph signature,
    /// preserving first-seen order.
    pub fn interchangeable_groups(&self) -> Vec<Vec<usize>> {
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, m) in self.mappings.iter().enumerate() {
            if !groups.contains_key(&m.graph_sig) {
                order.push(m.graph_sig);
            }
            groups.entry(m.graph_sig).or_default().push(i);
        }
        order.into_iter().map(|s| groups.remove(&s).expect("group present")).collect()
    }

    /// Merged node lookup.
    pub fn node(&self, id: MNodeId) -> &MNode {
        &self.nodes[id.index()]
    }

    /// Children adjacency over merged nodes.
    pub fn children(&self) -> Vec<Vec<MNodeId>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &p in &n.parents {
                ch[p.index()].push(MNodeId(i));
            }
        }
        ch
    }

    /// Merged nodes reachable (via parents) from the outputs of the given
    /// candidate subset, in topological order.
    pub fn reachable_from(&self, members: &[usize]) -> Vec<MNodeId> {
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<MNodeId> = members
            .iter()
            .flat_map(|&m| self.mappings[m].outputs.iter().copied())
            .collect();
        while let Some(id) = stack.pop() {
            if needed[id.index()] {
                continue;
            }
            needed[id.index()] = true;
            stack.extend(self.nodes[id.index()].parents.iter().copied());
        }
        (0..self.nodes.len()).map(MNodeId).filter(|m| needed[m.index()]).collect()
    }
}

fn graph_signature(sigs: &[u64], outputs: &[NodeId], _epochs: usize) -> u64 {
    let mut h = DefaultHasher::new();
    sigs.hash(&mut h);
    for o in outputs {
        o.index().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Hyper;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;

    fn candidate(strategy: FeatureStrategy, lr: f32, batch: usize) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: format!("{}-lr{lr}-b{batch}", strategy.label()),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: batch, epochs: 5, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    #[test]
    fn backbone_merges_across_strategies() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 16),
            candidate(FeatureStrategy::SumLast4, 0.01, 16),
        ];
        let multi = MultiModelGraph::build(&cands);
        // Shared: input + embedding + 6 blocks = 8 nodes. Model 1 adds its
        // 2 head nodes; model 2 adds its sum node + 2 head nodes.
        assert_eq!(multi.nodes.len(), 8 + 2 + 3);
        // Both models map their backbone prefix to the same merged ids.
        for i in 0..8 {
            assert_eq!(
                multi.mappings[0].node_to_merged[i],
                multi.mappings[1].node_to_merged[i]
            );
        }
        // Heads are distinct.
        let h0 = *multi.mappings[0].node_to_merged.last().unwrap();
        let h1 = *multi.mappings[1].node_to_merged.last().unwrap();
        assert_ne!(h0, h1);
    }

    #[test]
    fn trainable_nodes_never_merge_even_with_equal_sigs() {
        // Same strategy twice (identical graphs incl. head init): heads are
        // trainable, must not merge; backbone must fully merge.
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 16),
            candidate(FeatureStrategy::LastHidden, 0.02, 16),
        ];
        let multi = MultiModelGraph::build(&cands);
        let single = cands[0].graph.len();
        assert_eq!(multi.nodes.len(), single + 2); // + the 2nd model's head pair
        let last0 = *multi.mappings[0].node_to_merged.last().unwrap();
        let last1 = *multi.mappings[1].node_to_merged.last().unwrap();
        assert_ne!(last0, last1);
        assert_eq!(multi.node(last0).sig, multi.node(last1).sig);
    }

    #[test]
    fn interchangeable_groups_by_architecture() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 16),
            candidate(FeatureStrategy::LastHidden, 0.02, 32),
            candidate(FeatureStrategy::SumLast4, 0.01, 16),
            candidate(FeatureStrategy::LastHidden, 0.03, 16),
        ];
        let multi = MultiModelGraph::build(&cands);
        let groups = multi.interchangeable_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1, 3]);
        assert_eq!(groups[1], vec![2]);
    }

    #[test]
    fn mat_candidates_exclude_inputs_and_heads() {
        let cands = vec![candidate(FeatureStrategy::ConcatLast4, 0.01, 16)];
        let multi = MultiModelGraph::build(&cands);
        let u = multi.mat_candidates();
        for m in &u {
            let n = multi.node(*m);
            assert!(n.materializable && !n.is_input);
        }
        // embedding + 6 blocks + concat = 8.
        assert_eq!(u.len(), 8);
    }

    #[test]
    fn reachable_from_subset() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 16),
            candidate(FeatureStrategy::SumLast4, 0.01, 16),
        ];
        let multi = MultiModelGraph::build(&cands);
        let r0 = multi.reachable_from(&[0]);
        assert_eq!(r0.len(), cands[0].graph.len());
        let rboth = multi.reachable_from(&[0, 1]);
        assert_eq!(rboth.len(), multi.nodes.len());
        // Topological: parents precede children.
        let pos: HashMap<MNodeId, usize> =
            rboth.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        for &m in &rboth {
            for p in &multi.node(m).parents {
                assert!(pos[p] < pos[&m]);
            }
        }
    }

    #[test]
    fn merged_nodes_are_topologically_ordered() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 16),
            candidate(FeatureStrategy::ConcatLast4, 0.01, 16),
            candidate(FeatureStrategy::SumAllHidden, 0.02, 32),
        ];
        let multi = MultiModelGraph::build(&cands);
        for (i, n) in multi.nodes.iter().enumerate() {
            for p in &n.parents {
                assert!(p.index() < i, "node {i} has parent {}", p.index());
            }
        }
    }
}
