//! The user-facing model-selection session (paper §3's API + component
//! orchestration).
//!
//! [`ModelSelection::new`] performs workload initialization: original
//! model checkpoints, profiling, the materialization MILP, model fusion,
//! and optimized-plan checkpoints (the four init phases broken out in
//! Fig 6B). [`ModelSelection::fit`] is then called once per labeling cycle
//! with the newly labeled batch: it updates the dataset and the
//! incremental feature materialization (§4.2.3, including the exponential
//! backoff of `r`), retrains every unit on the full snapshot, and returns
//! the per-candidate validation accuracies.

use crate::backend::{Backend, BackendKind};
use crate::config::SystemConfig;
use crate::fusion::{fuse_models, TrainUnit};
use crate::mat_opt::{choose_materialization, mat_all_plan, no_reuse_plan, MilpRunStats};
use crate::materializer::{MatError, Materializer};
use crate::memory::estimate_peak_memory;
use crate::metrics::{CycleReport, InitReport, RunStats};
use crate::multimodel::MultiModelGraph;
use crate::plan::ExecutablePlan;
use crate::profiler::profile_graph;
use crate::spec::CandidateModel;
use crate::speedup::theoretical_speedup;
use crate::trainer::{CycleDataView, MemberResult, TrainError};
use nautilus_data::Dataset;
use nautilus_dnn::checkpoint::checkpoint_bytes;
use nautilus_dnn::graph::GraphError;
use nautilus_dnn::{ModelGraph, NodeId};
use nautilus_store::{IoCalibration, IoPolicy, SharedIoStats, StoreError, TensorStore};
use nautilus_util::{eventlog, telemetry};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

/// Execution strategy: the paper's system points (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Train unmodified models independently; full checkpoints (baseline).
    CurrentPractice,
    /// Materialize and load *all* materializable layers (baseline).
    MatAll,
    /// Nautilus with only the materialization optimization (ablation).
    MatOnly,
    /// Nautilus with only the model-fusion optimization (ablation).
    FuseOnly,
    /// Full Nautilus: materialization + fusion.
    Nautilus,
}

impl Strategy {
    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::CurrentPractice => "current-practice",
            Strategy::MatAll => "mat-all",
            Strategy::MatOnly => "nautilus-w/o-fuse",
            Strategy::FuseOnly => "nautilus-w/o-mat",
            Strategy::Nautilus => "nautilus",
        }
    }

    /// Parses a [`Strategy::label`] back into the strategy (wire DTOs ship
    /// strategies by label).
    pub fn from_label(label: &str) -> Option<Strategy> {
        [
            Strategy::CurrentPractice,
            Strategy::MatAll,
            Strategy::MatOnly,
            Strategy::FuseOnly,
            Strategy::Nautilus,
        ]
        .into_iter()
        .find(|s| s.label() == label)
    }

    /// Whether this strategy runs the MAT-OPT optimizer.
    pub fn runs_optimizer(&self) -> bool {
        !matches!(self, Strategy::CurrentPractice)
    }

    /// Whether model fusion (FUSE) is enabled.
    pub fn fuse_enabled(&self) -> bool {
        matches!(self, Strategy::FuseOnly | Strategy::Nautilus)
    }

    /// Whether per-member full checkpoints are kept during training.
    pub fn full_checkpoints(&self) -> bool {
        matches!(self, Strategy::CurrentPractice)
    }
}

/// Data handed to one `fit` call.
#[derive(Debug, Clone)]
pub enum CycleInput {
    /// Real labeled batches (real backend).
    Real {
        /// Newly labeled training records.
        train: Dataset,
        /// Newly labeled validation records.
        valid: Dataset,
    },
    /// Record counts only (simulated backend).
    Virtual {
        /// Newly labeled training records.
        n_train: usize,
        /// Newly labeled validation records.
        n_valid: usize,
    },
}

/// Session errors.
#[derive(Debug)]
pub enum SessionError {
    /// Graph/plan construction failed.
    Graph(GraphError),
    /// Materializer failure.
    Materializer(MatError),
    /// Trainer failure.
    Trainer(TrainError),
    /// Store failure.
    Store(StoreError),
    /// Misuse (wrong backend/input pairing, empty workload, ...).
    Invalid(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Graph(e) => write!(f, "session graph: {e}"),
            SessionError::Materializer(e) => write!(f, "session materializer: {e}"),
            SessionError::Trainer(e) => write!(f, "session trainer: {e}"),
            SessionError::Store(e) => write!(f, "session store: {e}"),
            SessionError::Invalid(m) => write!(f, "session: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<GraphError> for SessionError {
    fn from(e: GraphError) -> Self {
        SessionError::Graph(e)
    }
}
impl From<MatError> for SessionError {
    fn from(e: MatError) -> Self {
        SessionError::Materializer(e)
    }
}
impl From<TrainError> for SessionError {
    fn from(e: TrainError) -> Self {
        SessionError::Trainer(e)
    }
}
impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> Self {
        SessionError::Store(e)
    }
}

/// A model-selection session over evolving training data.
pub struct ModelSelection {
    config: SystemConfig,
    strategy: Strategy,
    candidates: Vec<CandidateModel>,
    multi: MultiModelGraph,
    units: Vec<(TrainUnit, ExecutablePlan)>,
    materializer: Materializer,
    backend: Backend,
    io: SharedIoStats,
    init: InitReport,
    milp: Option<MilpRunStats>,
    /// Current `r` (grows by exponential backoff).
    max_records: usize,
    cycle: usize,
    train_all: Dataset,
    valid_all: Dataset,
    n_train: usize,
    n_valid: usize,
    /// Measured I/O bandwidths from the startup micro-probe (real backend
    /// with `config.io.calibrate`); `None` means the planner keeps its
    /// static disk constant.
    calibration: Option<IoCalibration>,
    best_so_far: Option<(usize, f32)>,
    /// Best candidate's *trained* graph (real backend only): the plan
    /// graph's post-training parameters mapped back onto the candidate's
    /// own topology, ready for checkpointing or serving.
    best_trained: Option<(usize, ModelGraph)>,
}

impl ModelSelection {
    /// Initializes a workload: profiles candidates, runs the optimizer for
    /// the chosen strategy, and prepares training units.
    pub fn new(
        candidates: Vec<CandidateModel>,
        mut config: SystemConfig,
        strategy: Strategy,
        backend_kind: BackendKind,
        workdir: impl Into<PathBuf>,
    ) -> Result<Self, SessionError> {
        if candidates.is_empty() {
            return Err(SessionError::Invalid("empty candidate set".into()));
        }
        if config.threads > 0 {
            // Best-effort: ignored if NAUTILUS_THREADS is set or the shared
            // pool has already been started by an earlier session.
            let _ = nautilus_util::pool::request_threads(config.threads);
        }
        let workdir = workdir.into();
        std::fs::create_dir_all(&workdir)
            .map_err(|e| SessionError::Invalid(format!("workdir: {e}")))?;
        telemetry::init_from_env();
        eventlog::init_from_env();
        if let Some(path) = &config.trace {
            telemetry::enable_to(path.clone());
        }
        let _sp_init = telemetry::span("core", "session.init");
        let io = SharedIoStats::new();
        let mut backend = Backend::new(backend_kind, config.hardware, io.clone());
        if backend.is_real() {
            // Per-backend GEMM kernel opt-in: only real execution computes,
            // so only a real backend applies the preference. The
            // NAUTILUS_GEMM_KERNEL env override still wins inside the
            // dispatch layer, and unsupported hosts degrade to safe.
            if let Some(kind) =
                nautilus_tensor::ops::gemm::KernelKind::parse(&config.gemm_kernel)
            {
                nautilus_tensor::ops::gemm::set_kernel_preference(kind);
            }
        }
        let t_init = Instant::now();

        // Phase 1: original model checkpoints (all strategies).
        let sp = telemetry::span("core", "init.original_checkpoints");
        let t0 = Instant::now();
        let c0 = backend.elapsed_secs();
        for (i, c) in candidates.iter().enumerate() {
            let bytes = checkpoint_bytes(&c.graph, false);
            backend.charge_write(&format!("ckpt:init:{i}"), bytes);
            if backend.is_real() {
                let path = workdir.join(format!("ckpt-init-{i}.bin"));
                nautilus_dnn::checkpoint::save(&c.graph, &path)
                    .map_err(|e| SessionError::Invalid(format!("checkpoint: {e}")))?;
                io.record_write(bytes);
            }
        }
        let original_checkpoints_secs = end_phase(&mut backend, t0, c0);
        drop(sp);

        // Phase 2: profiling (optimizer strategies only).
        let sp = telemetry::span("core", "init.profiling");
        let t0 = Instant::now();
        let c0 = backend.elapsed_secs();
        let multi = MultiModelGraph::build(&candidates);
        if strategy.runs_optimizer() {
            // Profiling runs a couple of measurement batches per candidate.
            for c in &candidates {
                let profiles = profile_graph(&c.graph);
                let fwd: u64 = profiles.iter().map(|p| p.fwd_flops).sum();
                backend.charge_compute(2.0 * fwd as f64 * c.hyper.batch_size as f64, None);
            }
        }
        let profiling_secs = end_phase(&mut backend, t0, c0);
        drop(sp);

        // Measured I/O calibration (real backend, opt-in): replace the
        // planner's static disk constant with the machine's actual
        // sequential read bandwidth before the MILP runs. At startup the
        // page cache is cold for feature reads, so the blend point is the
        // raw disk number; re-plans blend in the observed hit curve.
        let calibration = if backend.is_real() && config.io.calibrate {
            match nautilus_store::calibrate::probe(&workdir, config.io.calibrate_probe_bytes) {
                Ok(cal) => {
                    config.planner.disk_bytes_per_sec = cal.seq_read_bytes_per_sec;
                    if telemetry::metrics_enabled() {
                        telemetry::CALIBRATED_SEQ_READ_BPS
                            .set(cal.seq_read_bytes_per_sec as i64);
                        telemetry::CALIBRATED_RAND_READ_BPS
                            .set(cal.rand_read_bytes_per_sec as i64);
                        telemetry::CALIBRATED_WRITE_BPS.set(cal.write_bytes_per_sec as i64);
                    }
                    eventlog::info(
                        "io.calibration",
                        &[
                            ("seq_read_bps", eventlog::Value::F64(cal.seq_read_bytes_per_sec)),
                            (
                                "rand_read_bps",
                                eventlog::Value::F64(cal.rand_read_bytes_per_sec),
                            ),
                            ("write_bps", eventlog::Value::F64(cal.write_bytes_per_sec)),
                            ("probe_bytes", eventlog::Value::U64(cal.probe_bytes)),
                        ],
                    );
                    Some(cal)
                }
                // A failed probe (exotic filesystem, no space) is not
                // fatal: keep the static constant.
                Err(_) => None,
            }
        } else {
            None
        };

        // Phase 3: the optimizer (MILP + fusion).
        let sp = telemetry::span("core", "init.optimize");
        let t0 = Instant::now();
        let c0 = backend.elapsed_secs();
        let max_records = config.max_records;
        let (v, milp) = Self::choose_v(&multi, &candidates, &config, strategy, max_records);
        let units = Self::build_units(&multi, &candidates, &config, strategy, &v)?;
        let optimize_secs = end_phase(&mut backend, t0, c0);
        drop(sp);

        // Phase 4: checkpoints for the optimized plans.
        let sp = telemetry::span("core", "init.plan_checkpoints");
        let t0 = Instant::now();
        let c0 = backend.elapsed_secs();
        if strategy.runs_optimizer() {
            for (i, (_, plan)) in units.iter().enumerate() {
                let bytes = checkpoint_bytes(&plan.graph, false);
                backend.charge_write(&format!("ckpt:plan:{i}"), bytes);
                if backend.is_real() {
                    let path = workdir.join(format!("ckpt-plan-{i}.bin"));
                    nautilus_dnn::checkpoint::save(&plan.graph, &path)
                        .map_err(|e| SessionError::Invalid(format!("checkpoint: {e}")))?;
                    io.record_write(bytes);
                }
            }
        }
        let plan_checkpoints_secs = end_phase(&mut backend, t0, c0);
        drop(sp);

        let mut store = TensorStore::open(workdir.join("features"), io.clone())?;
        // The real store models the OS page cache at the size the hardware
        // profile declares (the simulated backend has its own model).
        store.set_page_cache_bytes(config.hardware.page_cache_bytes);
        store.set_io_policy(IoPolicy {
            prefetch: config.io.prefetch,
            io_threads: config.io.io_threads,
            write_behind: config.io.write_behind,
            read_delay_ms: config.io.read_delay_ms,
        });
        // MAT-ALL is the paper's unbounded baseline: it materializes every
        // materializable layer "irrespective of whether it is efficient"
        // (§5.1), so it is exempt from the Bdisk enforcement that guards
        // planner-chosen sets.
        let enforced_budget = if strategy == Strategy::MatAll {
            u64::MAX
        } else {
            config.disk_budget_bytes
        };
        let mut materializer = Materializer::new(store, enforced_budget);
        // Fresh sessions have no snapshot yet; any backfill set is empty
        // work (zero records).
        let _ = materializer.install_v(&multi, &candidates, v, &mut backend)?;

        let init = InitReport {
            original_checkpoints_secs,
            profiling_secs,
            optimize_secs,
            plan_checkpoints_secs,
            milp_secs: milp.as_ref().map_or(0.0, |m| m.elapsed.as_secs_f64()),
            total_secs: match backend_kind {
                BackendKind::Real => t_init.elapsed().as_secs_f64(),
                BackendKind::Simulated => backend.elapsed_secs(),
            },
            num_units: units.len(),
            num_materialized: materializer.v().len(),
            theoretical_speedup: theoretical_speedup(&candidates),
        };

        let in_shape = {
            let g = &candidates[0].graph;
            let inp = g.input_ids()[0];
            g.shape(inp).0.clone()
        };
        Ok(ModelSelection {
            config,
            strategy,
            candidates,
            multi,
            units,
            materializer,
            backend,
            io,
            init,
            milp,
            max_records,
            cycle: 0,
            train_all: Dataset::empty(&in_shape, &[]),
            valid_all: Dataset::empty(&in_shape, &[]),
            n_train: 0,
            n_valid: 0,
            calibration,
            best_so_far: None,
            best_trained: None,
        })
    }

    /// Chooses the materialized set `V` for `strategy` — empty for the
    /// no-reuse strategies, everything for MatAll, the MILP optimum
    /// otherwise. Deterministic in its inputs; public so the distributed
    /// coordinator and workers derive the identical plan independently.
    pub fn choose_v(
        multi: &MultiModelGraph,
        candidates: &[CandidateModel],
        config: &SystemConfig,
        strategy: Strategy,
        max_records: usize,
    ) -> (BTreeSet<crate::multimodel::MNodeId>, Option<MilpRunStats>) {
        match strategy {
            Strategy::CurrentPractice | Strategy::FuseOnly => (BTreeSet::new(), None),
            Strategy::MatAll => {
                (multi.mat_candidates().into_iter().collect(), None)
            }
            Strategy::MatOnly | Strategy::Nautilus => {
                let res = choose_materialization(multi, candidates, config, max_records);
                (res.materialized, Some(res.milp))
            }
        }
    }

    /// Builds the fused training units and their executable plans for a
    /// chosen `V`. Deterministic in its inputs (greedy fusion iterates in
    /// fixed order), so a remote worker rebuilding the unit list from the
    /// same candidates/config/strategy/`V` gets byte-identical plan graphs
    /// — the foundation of the distributed bit-identity contract.
    pub fn build_units(
        multi: &MultiModelGraph,
        candidates: &[CandidateModel],
        config: &SystemConfig,
        strategy: Strategy,
        v: &BTreeSet<crate::multimodel::MNodeId>,
    ) -> Result<Vec<(TrainUnit, ExecutablePlan)>, SessionError> {
        let units: Vec<TrainUnit> = match strategy {
            Strategy::CurrentPractice | Strategy::MatAll => (0..candidates.len())
                .map(|i| {
                    let plan = if strategy == Strategy::MatAll {
                        mat_all_plan(multi, &[i], config)
                    } else {
                        no_reuse_plan(multi, &[i], config)
                    };
                    let memory = estimate_peak_memory(
                        multi,
                        &plan.actions,
                        candidates[i].hyper.batch_size,
                        config.workspace_bytes,
                        2.0,
                    );
                    let weighted_cost_flops = crate::fusion::unit_cost_flops(
                        multi,
                        &plan.actions,
                        candidates,
                        &[i],
                        config,
                    );
                    TrainUnit {
                        members: vec![i],
                        plan,
                        batch_size: candidates[i].hyper.batch_size,
                        epochs: candidates[i].hyper.epochs,
                        member_epochs: vec![candidates[i].hyper.epochs],
                        weighted_cost_flops,
                        memory,
                    }
                })
                .collect(),
            _ => fuse_models(multi, candidates, v, config, strategy.fuse_enabled()),
        };
        units
            .into_iter()
            .map(|u| {
                let plan = ExecutablePlan::build(multi, candidates, &u)?;
                Ok((u, plan))
            })
            .collect()
    }

    /// The initialization report (Fig 6B's phases).
    pub fn init_report(&self) -> InitReport {
        self.init
    }

    /// MILP statistics, when the strategy ran the optimizer.
    pub fn milp_stats(&self) -> Option<&MilpRunStats> {
        self.milp.as_ref()
    }

    /// The candidate set.
    pub fn candidates(&self) -> &[CandidateModel] {
        &self.candidates
    }

    /// The multi-model graph.
    pub fn multi(&self) -> &MultiModelGraph {
        &self.multi
    }

    /// The training units with their plans.
    pub fn units(&self) -> &[(TrainUnit, ExecutablePlan)] {
        &self.units
    }

    /// Current expected-maximum-records value `r`.
    pub fn max_records(&self) -> usize {
        self.max_records
    }

    /// Measured I/O bandwidths from the startup probe, if calibration ran.
    pub fn calibration(&self) -> Option<&IoCalibration> {
        self.calibration.as_ref()
    }

    /// Cumulative run statistics.
    pub fn stats(&self) -> RunStats {
        RunStats::from_parts(
            self.backend.elapsed_secs(),
            self.backend.busy_secs(),
            self.backend.total_flops(),
            self.io.snapshot(),
        )
    }

    /// Total bytes of materialized features currently on disk.
    pub fn feature_bytes(&self) -> u64 {
        if self.backend.is_real() {
            self.materializer.feature_bytes()
        } else {
            self.materializer.bytes_per_record(&self.multi)
                * (self.n_train + self.n_valid) as u64
        }
    }

    /// Runs one model-selection cycle on a newly labeled batch.
    pub fn fit(&mut self, input: CycleInput) -> Result<CycleReport, SessionError> {
        self.cycle += 1;
        let sp_cycle = telemetry::timed_span("core", "cycle.fit");
        let sp_mat = telemetry::timed_span("core", "cycle.materialize");
        let t_cycle = self.backend.elapsed_secs();

        // 1. Ingest the new batch.
        let (new_train, new_valid, dn_train, dn_valid) = match (&input, self.backend.is_real()) {
            (CycleInput::Real { train, valid }, true) => {
                (Some(train.clone()), Some(valid.clone()), train.len(), valid.len())
            }
            (CycleInput::Virtual { n_train, n_valid }, false) => {
                (None, None, *n_train, *n_valid)
            }
            _ => {
                return Err(SessionError::Invalid(
                    "CycleInput kind must match the backend kind".into(),
                ))
            }
        };
        if let (Some(t), Some(v)) = (&new_train, &new_valid) {
            self.train_all
                .extend(t)
                .map_err(|e| SessionError::Invalid(format!("train extend: {e}")))?;
            self.valid_all
                .extend(v)
                .map_err(|e| SessionError::Invalid(format!("valid extend: {e}")))?;
        }
        self.n_train += dn_train;
        self.n_valid += dn_valid;

        // Raw dataset persistence (the labeled snapshot is stored).
        let rec_bytes = self.raw_record_bytes();
        self.backend.charge_write("raw:train", rec_bytes * dn_train as u64);
        self.backend.charge_write("raw:valid", rec_bytes * dn_valid as u64);

        // 2. Exponential backoff of `r` (§4.2.3): when the snapshot outgrows
        // the planned maximum, double `r`, re-run the optimizer, and
        // re-materialize from scratch.
        let mut full_rematerialize = false;
        if self.n_train + self.n_valid > self.max_records && self.strategy.runs_optimizer() {
            while self.n_train + self.n_valid > self.max_records {
                self.max_records *= 2;
            }
            let t0 = Instant::now();
            // Re-plans see a warm page cache: blend the measured disk
            // bandwidth with DRAM speed at the hit rate the store has
            // actually observed so far.
            if let Some(cal) = &self.calibration {
                let hit = self.materializer.store.cache_stats().hit_fraction();
                self.config.planner.disk_bytes_per_sec =
                    cal.effective_read_bandwidth(hit, self.config.hardware.dram_bytes_per_sec);
            }
            let (v, milp) = Self::choose_v(
                &self.multi,
                &self.candidates,
                &self.config,
                self.strategy,
                self.max_records,
            );
            if let Some(m) = milp {
                self.milp = Some(m);
            }
            self.units =
                Self::build_units(&self.multi, &self.candidates, &self.config, self.strategy, &v)?;
            charge_phase(&mut self.backend, t0);
            let backfill =
                self.materializer.install_v(&self.multi, &self.candidates, v, &mut self.backend)?;
            full_rematerialize = !backfill.is_empty();
            if full_rematerialize {
                // Newly chosen nodes get the whole snapshot (which already
                // includes this cycle's batch) ...
                self.backfill_features(&backfill)?;
                // ... while *retained* nodes only need this cycle's batch
                // appended, like any other cycle.
                let retained: std::collections::BTreeSet<_> = self
                    .materializer
                    .v()
                    .difference(&backfill)
                    .copied()
                    .collect();
                self.materializer.materialize_subset(
                    &self.multi,
                    &self.candidates,
                    &retained,
                    "train",
                    new_train.as_ref(),
                    dn_train,
                    &mut self.backend,
                )?;
                self.materializer.materialize_subset(
                    &self.multi,
                    &self.candidates,
                    &retained,
                    "valid",
                    new_valid.as_ref(),
                    dn_valid,
                    &mut self.backend,
                )?;
            }
        }
        if full_rematerialize {
            // Handled above (backfill + retained-key appends).
        } else {
            // 3. Incremental materialization of just the new records.
            self.materializer.materialize_batch(
                &self.multi,
                "train",
                new_train.as_ref(),
                dn_train,
                &mut self.backend,
            )?;
            self.materializer.materialize_batch(
                &self.multi,
                "valid",
                new_valid.as_ref(),
                dn_valid,
                &mut self.backend,
            )?;
        }
        // On the real backend the span's wall clock is the ground truth;
        // the simulated backend reports its virtual clock.
        let materialize_secs = if self.backend.is_real() {
            sp_mat.finish()
        } else {
            drop(sp_mat);
            self.backend.elapsed_secs() - t_cycle
        };

        // 4. Train every unit on the full snapshot. On the real backend,
        // independent fused units run concurrently on the shared pool (each
        // worker gets its own accounting backend whose compute is absorbed
        // afterwards, and results are folded in unit order so the best-model
        // tie-break matches the serial loop bit for bit). The simulated
        // backend stays serial: its virtual clock is a single timeline, and
        // Fig 6/8-style numbers must not change.
        let sp_train = telemetry::timed_span("core", "cycle.train");
        let t_train = self.backend.elapsed_secs();
        let mut accuracies: Vec<(String, Option<f32>)> = Vec::new();
        let mut best: Option<(usize, String, f32)> = None;
        let parallel_units = self.backend.is_real()
            && self.units.len() > 1
            && nautilus_util::pool::num_threads() > 1;
        let unit_results: Vec<(Vec<MemberResult>, Option<ModelGraph>)> = if parallel_units {
            type UnitOut = Result<(Vec<MemberResult>, f64, f64, Option<ModelGraph>), TrainError>;
            let multi = &self.multi;
            let candidates = &self.candidates[..];
            let store = &self.materializer.store;
            let train = &self.train_all;
            let valid = &self.valid_all;
            let hw = self.config.hardware;
            let io = self.backend.io.clone();
            let full_ckpt = self.strategy.full_checkpoints();
            let shuffle = self.config.shuffle_each_epoch;
            let tasks: Vec<Box<dyn FnOnce() -> UnitOut + Send>> = self
                .units
                .iter()
                .map(|(unit, plan)| {
                    let io = io.clone();
                    Box::new(move || {
                        let mut worker = Backend::new(BackendKind::Real, hw, io);
                        let data = CycleDataView::Real { train, valid };
                        let (results, trained) = crate::trainer::train_unit_retaining(
                            multi, plan, unit, candidates, &data, store, &mut worker,
                            full_ckpt, shuffle,
                        )?;
                        Ok((results, worker.busy_secs(), worker.total_flops(), trained))
                    }) as Box<dyn FnOnce() -> UnitOut + Send>
                })
                .collect();
            let mut folded = Vec::with_capacity(self.units.len());
            for out in nautilus_util::pool::join_all(tasks) {
                let (results, busy, flops, trained) = out?;
                self.backend.absorb_compute(busy, flops);
                folded.push((results, trained));
            }
            folded
        } else {
            let mut folded = Vec::with_capacity(self.units.len());
            for (unit, plan) in &self.units {
                let data = if self.backend.is_real() {
                    CycleDataView::Real { train: &self.train_all, valid: &self.valid_all }
                } else {
                    CycleDataView::Virtual { n_train: self.n_train, n_valid: self.n_valid }
                };
                folded.push(crate::trainer::train_unit_retaining(
                    &self.multi,
                    plan,
                    unit,
                    &self.candidates,
                    &data,
                    &self.materializer.store,
                    &mut self.backend,
                    self.strategy.full_checkpoints(),
                    self.config.shuffle_each_epoch,
                )?);
            }
            folded
        };
        let mut best_unit = 0usize;
        for (ui, (results, _)) in unit_results.iter().enumerate() {
            for r in results {
                if let Some(acc) = r.accuracy {
                    if best.as_ref().is_none_or(|(_, _, b)| acc > *b) {
                        best = Some((r.candidate, r.name.clone(), acc));
                        best_unit = ui;
                    }
                }
                accuracies.push((r.name.clone(), r.accuracy));
            }
        }
        if let Some((ci, _, acc)) = &best {
            self.best_so_far = Some((*ci, *acc));
            if let Some(trained) = &unit_results[best_unit].1 {
                let (_, plan) = &self.units[best_unit];
                let exported =
                    export_candidate(&self.multi, &self.candidates, plan, trained, *ci);
                self.best_trained = Some((*ci, exported));
            }
        }
        let now = self.backend.elapsed_secs();
        let real = self.backend.is_real();
        let train_secs = if real { sp_train.finish() } else { drop(sp_train); now - t_train };
        let cycle_secs = if real { sp_cycle.finish() } else { drop(sp_cycle); now - t_cycle };

        Ok(CycleReport {
            cycle: self.cycle,
            train_records: self.n_train,
            valid_records: self.n_valid,
            materialize_secs,
            train_secs,
            cycle_secs,
            accuracies,
            best: best.map(|(_, n, a)| (n, a)),
            stats: self.stats(),
        })
    }

    /// Replaces the model-selection workload mid-session (the paper's
    /// "evolving model selection workloads" extension, §2.5: re-run the
    /// optimization and update the materialized layers).
    ///
    /// The accumulated labeled dataset is kept; profiling, the
    /// materialization MILP, fusion, and plan checkpoints re-run for the
    /// new candidate set, and features are re-materialized when the chosen
    /// set `V` changes. The new candidates must consume the same input
    /// shape as the old ones.
    pub fn update_workload(
        &mut self,
        candidates: Vec<CandidateModel>,
    ) -> Result<InitReport, SessionError> {
        if candidates.is_empty() {
            return Err(SessionError::Invalid("empty candidate set".into()));
        }
        let new_in = {
            let g = &candidates[0].graph;
            g.shape(g.input_ids()[0]).0.clone()
        };
        let old_in = {
            let g = &self.candidates[0].graph;
            g.shape(g.input_ids()[0]).0.clone()
        };
        if new_in != old_in {
            return Err(SessionError::Invalid(format!(
                "new workload input shape {new_in:?} != existing {old_in:?}"
            )));
        }

        let t_start = Instant::now();
        let c_start = self.backend.elapsed_secs();

        // Re-profile.
        let _sp_upd = telemetry::span("core", "session.update_workload");
        let sp = telemetry::span("core", "init.profiling");
        let t0 = Instant::now();
        let c0 = self.backend.elapsed_secs();
        let multi = MultiModelGraph::build(&candidates);
        if self.strategy.runs_optimizer() {
            for c in &candidates {
                let profiles = profile_graph(&c.graph);
                let fwd: u64 = profiles.iter().map(|p| p.fwd_flops).sum();
                self.backend
                    .charge_compute(2.0 * fwd as f64 * c.hyper.batch_size as f64, None);
            }
        }
        let profiling_secs = end_phase(&mut self.backend, t0, c0);
        drop(sp);

        // Re-optimize.
        let sp = telemetry::span("core", "init.optimize");
        let t0 = Instant::now();
        let c0 = self.backend.elapsed_secs();
        let (v, milp) =
            Self::choose_v(&multi, &candidates, &self.config, self.strategy, self.max_records);
        let units = Self::build_units(&multi, &candidates, &self.config, self.strategy, &v)?;
        let optimize_secs = end_phase(&mut self.backend, t0, c0);
        drop(sp);

        // Re-checkpoint plans.
        let sp = telemetry::span("core", "init.plan_checkpoints");
        let t0 = Instant::now();
        let c0 = self.backend.elapsed_secs();
        if self.strategy.runs_optimizer() {
            for (i, (_, plan)) in units.iter().enumerate() {
                let bytes = checkpoint_bytes(&plan.graph, false);
                self.backend.charge_write(&format!("ckpt:plan:u{i}"), bytes);
            }
        }
        let plan_checkpoints_secs = end_phase(&mut self.backend, t0, c0);
        drop(sp);

        let milp_secs = milp.as_ref().map_or(0.0, |m| m.elapsed.as_secs_f64());
        self.candidates = candidates;
        self.multi = multi;
        self.units = units;
        if let Some(m) = milp {
            self.milp = Some(m);
        }
        self.best_so_far = None;
        self.best_trained = None;

        // Swap materialization and backfill any newly chosen features for
        // the accumulated snapshot.
        let backfill =
            self.materializer.install_v(&self.multi, &self.candidates, v, &mut self.backend)?;
        self.backfill_features(&backfill)?;

        self.init = InitReport {
            original_checkpoints_secs: 0.0,
            profiling_secs,
            optimize_secs,
            plan_checkpoints_secs,
            milp_secs,
            total_secs: match self.backend.kind() {
                BackendKind::Real => t_start.elapsed().as_secs_f64(),
                BackendKind::Simulated => self.backend.elapsed_secs() - c_start,
            },
            num_units: self.units.len(),
            num_materialized: self.materializer.v().len(),
            theoretical_speedup: theoretical_speedup(&self.candidates),
        };
        Ok(self.init)
    }

    /// Materializes the full accumulated snapshot for newly chosen
    /// features (both splits).
    fn backfill_features(
        &mut self,
        backfill: &std::collections::BTreeSet<crate::multimodel::MNodeId>,
    ) -> Result<(), SessionError> {
        self.materializer.materialize_subset(
            &self.multi,
            &self.candidates,
            backfill,
            "train",
            if self.backend.is_real() { Some(&self.train_all) } else { None },
            self.n_train,
            &mut self.backend,
        )?;
        self.materializer.materialize_subset(
            &self.multi,
            &self.candidates,
            backfill,
            "valid",
            if self.backend.is_real() { Some(&self.valid_all) } else { None },
            self.n_valid,
            &mut self.backend,
        )?;
        Ok(())
    }

    /// Persists the session's evolving state (cycle counter, accumulated
    /// labeled snapshot, backoff-adjusted `r`) to `path` so a labeling
    /// campaign can survive a process restart. Materialized features
    /// already live on disk in the feature store; plans are recomputed
    /// deterministically on resume.
    pub fn save_state(&self, path: &std::path::Path) -> Result<(), SessionError> {
        use nautilus_tensor::ser;
        struct Header {
            version: u32,
            cycle: usize,
            n_train: usize,
            n_valid: usize,
            max_records: usize,
            best_so_far: Option<(usize, f32)>,
            has_data: bool,
        }
        nautilus_util::json_struct!(Header {
            version,
            cycle,
            n_train,
            n_valid,
            max_records,
            best_so_far,
            has_data
        });
        let header = Header {
            version: 1,
            cycle: self.cycle,
            n_train: self.n_train,
            n_valid: self.n_valid,
            max_records: self.max_records,
            best_so_far: self.best_so_far,
            has_data: self.backend.is_real(),
        };
        let header_json = nautilus_util::json::to_vec(&header);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(header_json.len() as u64).to_le_bytes());
        buf.extend_from_slice(&header_json);
        if self.backend.is_real() {
            buf.extend_from_slice(&ser::encode_many(&[
                self.train_all.inputs.clone(),
                self.train_all.labels.clone(),
                self.valid_all.inputs.clone(),
                self.valid_all.labels.clone(),
            ]));
        }
        std::fs::write(path, &buf)
            .map_err(|e| SessionError::Invalid(format!("state write: {e}")))?;
        Ok(())
    }

    /// Restores state saved by [`ModelSelection::save_state`] into a freshly
    /// constructed session (same candidates, config, strategy, and workdir —
    /// the feature store under the workdir is reused as-is).
    pub fn restore_state(&mut self, path: &std::path::Path) -> Result<(), SessionError> {
        use nautilus_tensor::ser;
        struct Header {
            version: u32,
            cycle: usize,
            n_train: usize,
            n_valid: usize,
            max_records: usize,
            best_so_far: Option<(usize, f32)>,
            has_data: bool,
        }
        nautilus_util::json_struct!(Header {
            version,
            cycle,
            n_train,
            n_valid,
            max_records,
            best_so_far,
            has_data
        });
        let data = std::fs::read(path)
            .map_err(|e| SessionError::Invalid(format!("state read: {e}")))?;
        if data.len() < 8 {
            return Err(SessionError::Invalid("truncated session state".into()));
        }
        let hlen = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
        if data.len() < 8 + hlen {
            return Err(SessionError::Invalid("truncated session state header".into()));
        }
        let header: Header = nautilus_util::json::from_slice(&data[8..8 + hlen])
            .map_err(|e| SessionError::Invalid(format!("state header: {e}")))?;
        if header.version != 1 {
            return Err(SessionError::Invalid(format!(
                "unsupported session state version {}",
                header.version
            )));
        }
        if header.has_data != self.backend.is_real() {
            return Err(SessionError::Invalid(
                "session state backend kind does not match".into(),
            ));
        }
        if header.has_data {
            let tensors = ser::decode_many(&data[8 + hlen..])
                .map_err(|e| SessionError::Invalid(format!("state payload: {e}")))?;
            let [ti, tl, vi, vl]: [nautilus_tensor::Tensor; 4] = tensors
                .try_into()
                .map_err(|_| SessionError::Invalid("state payload count".into()))?;
            self.train_all = Dataset::new(ti, tl)
                .map_err(|e| SessionError::Invalid(format!("state train: {e}")))?;
            self.valid_all = Dataset::new(vi, vl)
                .map_err(|e| SessionError::Invalid(format!("state valid: {e}")))?;
        }
        self.cycle = header.cycle;
        self.n_train = header.n_train;
        self.n_valid = header.n_valid;
        self.best_so_far = header.best_so_far;
        // Trained parameters are not persisted in session state; the next
        // fit cycle repopulates the exportable model.
        self.best_trained = None;
        if header.max_records != self.max_records {
            // Re-plan under the persisted (backoff-grown) r.
            self.max_records = header.max_records;
            let (v, milp) = Self::choose_v(
                &self.multi,
                &self.candidates,
                &self.config,
                self.strategy,
                self.max_records,
            );
            if let Some(m) = milp {
                self.milp = Some(m);
            }
            self.units =
                Self::build_units(&self.multi, &self.candidates, &self.config, self.strategy, &v)?;
            let backfill =
                self.materializer.install_v(&self.multi, &self.candidates, v, &mut self.backend)?;
            self.backfill_features(&backfill)?;
        }
        // Feature-store consistency: every materialized key must already
        // hold exactly the snapshot's records.
        for &m in self.materializer.v().clone().iter() {
            let key = format!("{}:train", self.multi.node(m).key);
            if self.backend.is_real() && self.materializer.store.num_records(&key) != self.n_train
            {
                return Err(SessionError::Invalid(format!(
                    "feature store out of sync for '{key}': {} records vs snapshot {}",
                    self.materializer.store.num_records(&key),
                    self.n_train
                )));
            }
        }
        Ok(())
    }

    /// Scores unlabeled records with the best model so far, returning
    /// per-record class-probability vectors for active-learning samplers
    /// (token probabilities are averaged per record). Real backend only.
    pub fn score_unlabeled(
        &self,
        pool_inputs: &nautilus_tensor::Tensor,
    ) -> Result<Vec<Vec<f32>>, SessionError> {
        if !self.backend.is_real() {
            return Err(SessionError::Invalid("scoring requires the real backend".into()));
        }
        let Some((best, _)) = self.best_so_far else {
            return Err(SessionError::Invalid("no trained model yet".into()));
        };
        let cand = &self.candidates[best];
        let g = &cand.graph;
        let input = g.input_ids()[0];
        let mut bi = nautilus_dnn::exec::BatchInputs::new();
        bi.insert(input, pool_inputs.clone());
        let fwd = nautilus_dnn::exec::forward(g, &bi, false)
            .map_err(|e| SessionError::Invalid(format!("scoring: {e}")))?;
        let logits = fwd.output(g.outputs()[0]);
        let probs = nautilus_tensor::ops::softmax_last(logits);
        let n = pool_inputs.shape().dim(0);
        let (rows, cols, data) = probs.as_matrix();
        let rows_per_record = rows / n.max(1);
        let mut out = Vec::with_capacity(n);
        for r in 0..n {
            let mut avg = vec![0.0f32; cols];
            for t in 0..rows_per_record {
                let row = &data[(r * rows_per_record + t) * cols..][..cols];
                for (a, &p) in avg.iter_mut().zip(row) {
                    *a += p / rows_per_record as f32;
                }
            }
            out.push(avg);
        }
        Ok(out)
    }

    /// Exports the best candidate trained so far as `(candidate index,
    /// trained graph)` — the candidate's own topology carrying the
    /// post-training parameters from its (possibly fused) execution plan.
    ///
    /// The returned graph is checkpoint- and serving-ready: save it with
    /// [`nautilus_dnn::checkpoint::save`] or publish it to a
    /// `nautilus-serve` model registry. Errors on the simulated backend
    /// (nothing is actually trained there) and before the first real
    /// `fit` cycle.
    pub fn export_best(&self) -> Result<(usize, ModelGraph), SessionError> {
        if !self.backend.is_real() {
            return Err(SessionError::Invalid(
                "export_best requires the real backend".into(),
            ));
        }
        match &self.best_trained {
            Some((ci, g)) => Ok((*ci, g.clone())),
            None => Err(SessionError::Invalid("no trained model yet".into())),
        }
    }

    /// [`export_best`] plus the int8 serving form: every dense layer of
    /// the exported graph row-quantized (per-channel symmetric scales) at
    /// export time, ready to hand to a quantized serving path — the same
    /// representation `ModelRegistry::publish_with` builds when
    /// `quantize_int8` is on.
    pub fn export_best_quantized(
        &self,
    ) -> Result<(usize, ModelGraph, nautilus_dnn::QuantizedModel), SessionError> {
        let (ci, g) = self.export_best()?;
        let quant = nautilus_dnn::QuantizedModel::from_graph(&g, None);
        Ok((ci, g, quant))
    }

    fn raw_record_bytes(&self) -> u64 {
        let g = &self.candidates[0].graph;
        let inp = g.input_ids()[0];
        g.shape(inp).num_bytes() as u64
    }
}

/// Maps the trained plan graph's parameters back onto candidate `ci`'s own
/// topology: candidate node → merged node (`mappings[ci]`) → plan node
/// (`merged_to_plan`). Nodes the plan pruned or loaded from materialized
/// features keep their initial (frozen) parameters — the optimizer never
/// touches those, so the result equals full solo training of the candidate.
pub fn export_candidate(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    plan: &ExecutablePlan,
    trained: &ModelGraph,
    ci: usize,
) -> ModelGraph {
    let mut g = candidates[ci].graph.clone();
    for idx in 0..g.len() {
        let m = multi.mappings[ci].node_to_merged[idx];
        let Some(&p) = plan.merged_to_plan.get(&m) else { continue };
        let src = &trained.node(p).params;
        let dst = &mut g.node_mut(NodeId(idx)).params;
        if !src.is_empty() && src.len() == dst.len() {
            dst.clone_from(src);
        }
    }
    g
}

impl Drop for ModelSelection {
    fn drop(&mut self) {
        // Best-effort trace flush: a no-op unless a sink was configured
        // (NAUTILUS_TRACE or SystemConfig::trace). Sequential sessions
        // re-export cumulatively, so the file always holds the full run.
        let _ = telemetry::export();
    }
}

/// Ends an initialization phase: charges its measured wall time to the
/// simulated clock (planning is real CPU work in both modes) and returns
/// the phase duration on the session's own clock — wall time on the real
/// backend, virtual-clock delta (charged IO/compute + planning wall) on
/// the simulated one.
fn end_phase(backend: &mut Backend, t0: Instant, clock0: f64) -> f64 {
    let wall = t0.elapsed().as_secs_f64();
    backend.charge_overhead(wall);
    match backend.kind() {
        BackendKind::Real => wall,
        BackendKind::Simulated => backend.elapsed_secs() - clock0,
    }
}

/// Charges a mid-cycle planning phase's wall time (backoff re-planning).
fn charge_phase(backend: &mut Backend, t0: Instant) -> f64 {
    let secs = t0.elapsed().as_secs_f64();
    backend.charge_overhead(secs);
    secs
}
