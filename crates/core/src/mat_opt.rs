//! Materialization optimization (paper §4.2): MILP-based joint selection of
//! materialized layers and reuse plans.
//!
//! Implementation notes relative to Eq 8–10:
//!
//! * Candidates with identical graphs (differing only in learning rate,
//!   batch size, or epochs) are grouped into one weighted variable block —
//!   an exact reduction, since their `X`/`Y` sub-problems are identical and
//!   only the `r · epochs(φᵢ)` weight differs.
//! * Constraint (c) is enforced **per parent** (`X_parent ≥ Y_child`)
//!   rather than as the paper's sum form, which is only equivalent for
//!   single-parent chains; the per-parent form is required for DAGs with
//!   multi-input layers (Add/Concat).
//! * Input placeholders may be pruned (when a loaded feature makes raw data
//!   unnecessary) or loaded (`q(l) = loaded`), but never "computed": `Y` is
//!   pinned to zero for them, otherwise the solver would manufacture raw
//!   data for free.
//! * Costs enter the objective in GFLOPs and storage in GB to keep the
//!   simplex well-conditioned.

use crate::config::SystemConfig;
use crate::multimodel::{MNodeId, MultiModelGraph};
use crate::spec::CandidateModel;
use nautilus_milp::{solve, BbOptions, LinExpr, MilpStatus, Problem, VarId};
use nautilus_util::telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

const GFLOP: f64 = 1e-9;
const GB: f64 = 1e-9;

/// What a reuse plan does with a layer (paper `q(l, M)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAction {
    /// The layer is absent from the plan.
    Pruned,
    /// Present; its output is computed from its parents.
    Computed,
    /// Present; its output is loaded (materialized feature or raw input).
    Loaded,
}

/// Statistics of one MILP solve (reported by the §5.3 drill-down).
#[derive(Debug, Clone)]
pub struct MilpRunStats {
    /// Solver status.
    pub status: MilpStatus,
    /// Objective value (GFLOP-scaled cost).
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Solve wall time.
    pub elapsed: Duration,
    /// Variable count.
    pub num_vars: usize,
    /// Constraint count.
    pub num_constraints: usize,
}

/// Result of the global materialization optimization.
#[derive(Debug, Clone)]
pub struct MatOptResult {
    /// The chosen set `V` of merged nodes to materialize (after discarding
    /// selected-but-unused layers, §4.2.2's post-processing step).
    pub materialized: BTreeSet<MNodeId>,
    /// MILP statistics.
    pub milp: MilpRunStats,
    /// Number of interchangeable graph groups the MILP was built over.
    pub groups: usize,
}

/// Result of solving a reuse plan with `V` fixed (§4.3.2).
#[derive(Debug, Clone)]
pub struct UnitPlan {
    /// Action per reachable merged node.
    pub actions: BTreeMap<MNodeId, NodeAction>,
    /// Per-record plan cost in planner FLOPs (Eq 5).
    pub cost_flops: f64,
    /// MILP statistics.
    pub milp: Option<MilpRunStats>,
}

fn cload_flops(cfg: &SystemConfig, bytes: u64) -> f64 {
    cfg.planner.load_cost_flops(bytes)
}

/// Solves Eq 8–10: picks `V ⊆ U` within the disk budget minimizing total
/// weighted training cost. `max_records` is the paper's `r`.
pub fn choose_materialization(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    cfg: &SystemConfig,
    max_records: usize,
) -> MatOptResult {
    choose_materialization_grouped(multi, candidates, cfg, max_records, true)
}

/// [`choose_materialization`] with explicit control over the
/// interchangeable-group reduction — `grouped = false` builds one `X`/`Y`
/// block per model as in the paper's raw Eq 8–10 formulation (exposed for
/// the ablation benchmark; both settings produce the same optimum).
pub fn choose_materialization_grouped(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    cfg: &SystemConfig,
    max_records: usize,
    grouped: bool,
) -> MatOptResult {
    let _sp = telemetry::span("planner", "planner.choose_materialization");
    // Gauge: the disk constant this MILP run actually used (static default
    // or the measured/blended value from I/O calibration).
    telemetry::PLANNER_DISK_BPS.set(cfg.planner.disk_bytes_per_sec as u64);
    // Companion gauge for the wire term: 0 means single-box (no network
    // leg in the load-cost model), nonzero means the distributed
    // coordinator fed a measured bytes-over-wire bandwidth into this run.
    telemetry::PLANNER_NET_BPS.set(cfg.planner.net_bytes_per_sec as u64);
    let groups = if grouped {
        multi.interchangeable_groups()
    } else {
        (0..candidates.len()).map(|i| vec![i]).collect()
    };
    let u_set = multi.mat_candidates();

    let mut problem = Problem::new();
    // Z variables, one per materialization candidate.
    let z_vars: BTreeMap<MNodeId, VarId> = u_set
        .iter()
        .map(|&m| (m, problem.binary(format!("Z[{}]", multi.node(m).name))))
        .collect();

    // Per-group X/Y blocks over the exemplar member's nodes.
    struct GroupBlock {
        exemplar: usize,
        xs: Vec<VarId>,
        ys: Vec<VarId>,
    }
    let mut blocks = Vec::with_capacity(groups.len());
    let mut objective = LinExpr::new();
    let r = max_records as f64;

    for group in &groups {
        let exemplar = group[0];
        let weight: f64 =
            group.iter().map(|&i| candidates[i].hyper.epochs as f64 * r).sum();
        let mapping = &multi.mappings[exemplar];
        let n = mapping.node_to_merged.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for (j, &m) in mapping.node_to_merged.iter().enumerate() {
            let node = multi.node(m);
            let x = problem.binary(format!("X[g{exemplar}/{j}]"));
            let y = problem.binary(format!("Y[g{exemplar}/{j}]"));
            let ccomp = node.profile.ccomp_flops() as f64 * GFLOP;
            let cload = cload_flops(cfg, node.profile.out_bytes) * GFLOP;
            objective.add_term(x, weight * cload);
            objective.add_term(y, weight * (ccomp - cload));
            xs.push(x);
            ys.push(y);
        }
        // (a) outputs present.
        for o in candidates[exemplar].graph.outputs() {
            problem.ge(LinExpr::term(xs[o.index()], 1.0), 1.0);
        }
        for (j, &m) in mapping.node_to_merged.iter().enumerate() {
            let node = multi.node(m);
            // (b) computed => present.
            problem.ge(LinExpr::term(xs[j], 1.0).plus(ys[j], -1.0), 0.0);
            // (c) computed => every parent present (per-parent form).
            let model_node = candidates[exemplar].graph.node(nautilus_dnn::NodeId(j));
            for p in &model_node.inputs {
                problem.ge(LinExpr::term(xs[p.index()], 1.0).plus(ys[j], -1.0), 0.0);
            }
            // (d) loading requires materialization (or raw-input status).
            if node.is_input {
                // Inputs cannot be computed.
                problem.le(LinExpr::term(ys[j], 1.0), 0.0);
            } else if let Some(&z) = z_vars.get(&m) {
                problem.le(LinExpr::term(xs[j], 1.0).plus(ys[j], -1.0).plus(z, -1.0), 0.0);
            } else {
                // Non-materializable: present => computed.
                problem.le(LinExpr::term(xs[j], 1.0).plus(ys[j], -1.0), 0.0);
            }
        }
        blocks.push(GroupBlock { exemplar, xs, ys });
    }

    // (e) storage budget.
    let mut storage = LinExpr::new();
    for (&m, &z) in &z_vars {
        storage.add_term(z, multi.node(m).profile.out_bytes as f64 * r * GB);
    }
    problem.le(storage, cfg.disk_budget_bytes as f64 * GB);
    problem.minimize(objective);

    let options = BbOptions {
        max_nodes: cfg.milp_max_nodes,
        time_limit: Duration::from_secs(cfg.milp_time_limit_secs),
        ..Default::default()
    };
    let num_vars = problem.num_vars();
    let num_constraints = problem.num_constraints();
    let sol = solve(&problem, &options);

    let mut materialized = BTreeSet::new();
    if matches!(sol.status, MilpStatus::Optimal | MilpStatus::Feasible) {
        // Keep only Z's actually used by some load (post-processing).
        let mut used: BTreeSet<MNodeId> = BTreeSet::new();
        for block in &blocks {
            let mapping = &multi.mappings[block.exemplar];
            for (j, &m) in mapping.node_to_merged.iter().enumerate() {
                let x = sol.values[block.xs[j].index()].round() as i64;
                let y = sol.values[block.ys[j].index()].round() as i64;
                if x == 1 && y == 0 && !multi.node(m).is_input {
                    used.insert(m);
                }
            }
        }
        for (&m, &z) in &z_vars {
            if sol.values[z.index()].round() as i64 == 1 && used.contains(&m) {
                materialized.insert(m);
            }
        }
    }
    MatOptResult {
        materialized,
        milp: MilpRunStats {
            status: sol.status,
            objective: sol.objective,
            nodes: sol.nodes,
            elapsed: sol.elapsed,
            num_vars,
            num_constraints,
        },
        groups: groups.len(),
    }
}

/// Finds the optimal reuse plan for a (possibly fused) member set given a
/// fixed materialized set `V` (§4.3.2: the Eq 8–10 MILP without `Z`).
///
/// The returned cost is per record in planner FLOPs, with shared
/// materializable nodes counted once — the fused training cost `C(M_opt)`.
pub fn plan_given_v(
    multi: &MultiModelGraph,
    members: &[usize],
    v: &BTreeSet<MNodeId>,
    cfg: &SystemConfig,
) -> UnitPlan {
    let reachable = multi.reachable_from(members);
    let mut problem = Problem::new();
    let mut xs: BTreeMap<MNodeId, VarId> = BTreeMap::new();
    let mut ys: BTreeMap<MNodeId, VarId> = BTreeMap::new();
    let mut objective = LinExpr::new();
    for &m in &reachable {
        let node = multi.node(m);
        let x = problem.binary(format!("X[{}]", node.name));
        let y = problem.binary(format!("Y[{}]", node.name));
        let ccomp = node.profile.ccomp_flops() as f64 * GFLOP;
        let cload = cload_flops(cfg, node.profile.out_bytes) * GFLOP;
        objective.add_term(x, cload);
        objective.add_term(y, ccomp - cload);
        xs.insert(m, x);
        ys.insert(m, y);
    }
    for &mi in members {
        for &o in &multi.mappings[mi].outputs {
            problem.ge(LinExpr::term(xs[&o], 1.0), 1.0);
        }
    }
    for &m in &reachable {
        let node = multi.node(m);
        problem.ge(LinExpr::term(xs[&m], 1.0).plus(ys[&m], -1.0), 0.0);
        for p in &node.parents {
            problem.ge(LinExpr::term(xs[p], 1.0).plus(ys[&m], -1.0), 0.0);
        }
        if node.is_input {
            problem.le(LinExpr::term(ys[&m], 1.0), 0.0);
        } else if node.materializable && v.contains(&m) {
            // Loading permitted: X - Y <= 1 always true; nothing to add.
        } else {
            problem.le(LinExpr::term(xs[&m], 1.0).plus(ys[&m], -1.0), 0.0);
        }
    }
    problem.minimize(objective);
    let options = BbOptions {
        max_nodes: cfg.milp_max_nodes,
        time_limit: Duration::from_secs(cfg.milp_time_limit_secs),
        ..Default::default()
    };
    let num_vars = problem.num_vars();
    let num_constraints = problem.num_constraints();
    let sol = solve(&problem, &options);

    let mut actions = BTreeMap::new();
    if matches!(sol.status, MilpStatus::Optimal | MilpStatus::Feasible) {
        for &m in &reachable {
            let x = sol.values[xs[&m].index()].round() as i64;
            let y = sol.values[ys[&m].index()].round() as i64;
            let action = match (x, y) {
                (0, _) => NodeAction::Pruned,
                (1, 1) => NodeAction::Computed,
                (1, 0) => NodeAction::Loaded,
                _ => unreachable!("binary variables"),
            };
            actions.insert(m, action);
        }
    } else {
        // Degrade to the no-reuse plan: everything computed, inputs loaded.
        for &m in &reachable {
            let node = multi.node(m);
            actions
                .insert(m, if node.is_input { NodeAction::Loaded } else { NodeAction::Computed });
        }
    }
    let cost_flops = plan_cost_flops(multi, &actions, cfg);
    UnitPlan {
        actions,
        cost_flops,
        milp: Some(MilpRunStats {
            status: sol.status,
            objective: sol.objective,
            nodes: sol.nodes,
            elapsed: sol.elapsed,
            num_vars,
            num_constraints,
        }),
    }
}

/// The MAT-ALL baseline plan (§5.1): load *every* materializable frontier
/// layer regardless of whether computing it would be cheaper, prune
/// everything below, compute the rest.
pub fn mat_all_plan(
    multi: &MultiModelGraph,
    members: &[usize],
    cfg: &SystemConfig,
) -> UnitPlan {
    let reachable = multi.reachable_from(members);
    let in_unit: BTreeSet<MNodeId> = reachable.iter().copied().collect();
    let children = multi.children();
    let member_outputs: BTreeSet<MNodeId> = members
        .iter()
        .flat_map(|&m| multi.mappings[m].outputs.iter().copied())
        .collect();
    let mut actions = BTreeMap::new();
    for &m in &reachable {
        let node = multi.node(m);
        let action = if node.materializable {
            // Frontier = feeds a non-materializable consumer in this unit,
            // or is itself a model output.
            let feeds_unfrozen = children[m.index()]
                .iter()
                .any(|c| in_unit.contains(c) && !multi.node(*c).materializable);
            if feeds_unfrozen || member_outputs.contains(&m) {
                NodeAction::Loaded
            } else {
                NodeAction::Pruned
            }
        } else {
            NodeAction::Computed
        };
        actions.insert(m, action);
    }
    let cost_flops = plan_cost_flops(multi, &actions, cfg);
    UnitPlan { actions, cost_flops, milp: None }
}

/// The no-reuse plan (Current Practice): every layer computed, raw inputs
/// loaded.
pub fn no_reuse_plan(
    multi: &MultiModelGraph,
    members: &[usize],
    cfg: &SystemConfig,
) -> UnitPlan {
    let reachable = multi.reachable_from(members);
    let mut actions = BTreeMap::new();
    for &m in &reachable {
        let node = multi.node(m);
        actions.insert(m, if node.is_input { NodeAction::Loaded } else { NodeAction::Computed });
    }
    let cost_flops = plan_cost_flops(multi, &actions, cfg);
    UnitPlan { actions, cost_flops, milp: None }
}

/// Eq 5: per-record plan cost in planner FLOPs.
pub fn plan_cost_flops(
    multi: &MultiModelGraph,
    actions: &BTreeMap<MNodeId, NodeAction>,
    cfg: &SystemConfig,
) -> f64 {
    actions
        .iter()
        .map(|(&m, &a)| {
            let node = multi.node(m);
            match a {
                NodeAction::Pruned => 0.0,
                NodeAction::Computed => node.profile.ccomp_flops() as f64,
                NodeAction::Loaded => cload_flops(cfg, node.profile.out_bytes),
            }
        })
        .sum()
}

/// The set of materialized layers a plan actually loads (excluding raw
/// inputs) — used to validate budgets and drive the materializer.
pub fn loads_of(
    multi: &MultiModelGraph,
    actions: &BTreeMap<MNodeId, NodeAction>,
) -> BTreeSet<MNodeId> {
    actions
        .iter()
        .filter(|(&m, &a)| a == NodeAction::Loaded && !multi.node(m).is_input)
        .map(|(&m, _)| m)
        .collect()
}

/// Checks Def 4.5's structural plan conditions: all member outputs present;
/// computed nodes have all parents present; loaded nodes are materialized
/// or inputs.
pub fn validate_plan(
    multi: &MultiModelGraph,
    members: &[usize],
    v: &BTreeSet<MNodeId>,
    actions: &BTreeMap<MNodeId, NodeAction>,
) -> Result<(), String> {
    for &mi in members {
        for o in &multi.mappings[mi].outputs {
            if actions.get(o).copied().unwrap_or(NodeAction::Pruned) == NodeAction::Pruned {
                return Err(format!("output {} pruned", multi.node(*o).name));
            }
        }
    }
    for (&m, &a) in actions {
        let node = multi.node(m);
        match a {
            NodeAction::Pruned => {}
            NodeAction::Computed => {
                if node.is_input {
                    return Err(format!("input {} marked computed", node.name));
                }
                for p in &node.parents {
                    if actions.get(p).copied().unwrap_or(NodeAction::Pruned)
                        == NodeAction::Pruned
                    {
                        return Err(format!(
                            "computed {} has pruned parent {}",
                            node.name,
                            multi.node(*p).name
                        ));
                    }
                }
            }
            NodeAction::Loaded => {
                if !node.is_input && !v.contains(&m) {
                    return Err(format!("loaded {} not materialized", node.name));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Hyper;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::resnet::{fine_tune_model, ResNetConfig};
    use nautilus_models::BuildScale;

    fn bert_candidate(strategy: FeatureStrategy, lr: f32) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: format!("{}-{lr}", strategy.label()),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 5, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    fn cfg_with_budget(bytes: u64) -> SystemConfig {
        SystemConfig::tiny().into_builder().disk_budget_bytes(bytes).build()
    }

    #[test]
    fn zero_budget_materializes_nothing() {
        let cands = vec![bert_candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg_with_budget(0), 100);
        assert!(res.materialized.is_empty());
        assert_eq!(res.groups, 1);
    }

    #[test]
    fn generous_budget_materializes_the_feature_frontier() {
        // Planner config where loading is much cheaper than computing.
        let mut cfg = cfg_with_budget(1 << 30);
        cfg.planner.flops_per_sec = 5e9; // tiny model: make compute "slow"
        cfg.planner.disk_bytes_per_sec = 500e6;
        let cands = vec![
            bert_candidate(FeatureStrategy::LastHidden, 0.01),
            bert_candidate(FeatureStrategy::LastHidden, 0.02),
        ];
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg, 100);
        assert_eq!(res.milp.status, MilpStatus::Optimal);
        assert_eq!(res.groups, 1, "lr-only variants group together");
        assert!(!res.materialized.is_empty());
        // The last hidden block output should be chosen (it cuts the whole
        // backbone).
        let names: Vec<&str> = res
            .materialized
            .iter()
            .map(|&m| multi.node(m).name.as_str())
            .collect();
        assert!(names.contains(&"bert/block5"), "{names:?}");
        // And a plan given V loads it.
        let plan = plan_given_v(&multi, &[0], &res.materialized, &cfg);
        validate_plan(&multi, &[0], &res.materialized, &plan.actions).unwrap();
        let loads = loads_of(&multi, &plan.actions);
        assert!(!loads.is_empty());
        // The plan must beat the no-reuse plan.
        let base = no_reuse_plan(&multi, &[0], &cfg);
        assert!(plan.cost_flops < base.cost_flops);
    }

    #[test]
    fn storage_budget_is_respected() {
        let mut cfg = cfg_with_budget(0);
        cfg.planner.flops_per_sec = 5e9;
        let cands = vec![bert_candidate(FeatureStrategy::ConcatLast4, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let r = 1000usize;
        // Budget for exactly one block output: 8 tokens * 32 dim * 4 B * r.
        let one_block = 8 * 32 * 4 * r as u64;
        cfg.disk_budget_bytes = one_block + 100;
        let res = choose_materialization(&multi, &cands, &cfg, r);
        let total: u64 = res
            .materialized
            .iter()
            .map(|&m| multi.node(m).profile.out_bytes * r as u64)
            .sum();
        assert!(total <= cfg.disk_budget_bytes, "{total} > {}", cfg.disk_budget_bytes);
        assert!(res.materialized.len() <= 1);
    }

    #[test]
    fn plan_given_empty_v_computes_everything() {
        let cfg = cfg_with_budget(1 << 30);
        let cands = vec![bert_candidate(FeatureStrategy::SumLast4, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let plan = plan_given_v(&multi, &[0], &BTreeSet::new(), &cfg);
        for (&m, &a) in &plan.actions {
            if multi.node(m).is_input {
                assert_eq!(a, NodeAction::Loaded);
            } else {
                assert_eq!(a, NodeAction::Computed, "{}", multi.node(m).name);
            }
        }
        let base = no_reuse_plan(&multi, &[0], &cfg);
        assert!((plan.cost_flops - base.cost_flops).abs() < 1.0);
    }

    #[test]
    fn fused_plan_counts_shared_nodes_once() {
        let cfg = cfg_with_budget(1 << 30);
        let cands = vec![
            bert_candidate(FeatureStrategy::LastHidden, 0.01),
            bert_candidate(FeatureStrategy::LastHidden, 0.02),
        ];
        let multi = MultiModelGraph::build(&cands);
        let v = BTreeSet::new();
        let solo = plan_given_v(&multi, &[0], &v, &cfg);
        let fused = plan_given_v(&multi, &[0, 1], &v, &cfg);
        // Fused cost < 2x solo: the backbone is shared.
        assert!(fused.cost_flops < 1.5 * solo.cost_flops, "{} vs {}", fused.cost_flops, solo.cost_flops);
        assert!(fused.cost_flops > solo.cost_flops);
        validate_plan(&multi, &[0, 1], &v, &fused.actions).unwrap();
    }

    #[test]
    fn mat_all_loads_frontier_and_prunes_below() {
        let cfg = cfg_with_budget(1 << 30);
        let cands = vec![bert_candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let plan = mat_all_plan(&multi, &[0], &cfg);
        // The last block is loaded; lower blocks and embedding pruned.
        let mut loaded = Vec::new();
        let mut pruned = Vec::new();
        for (&m, &a) in &plan.actions {
            match a {
                NodeAction::Loaded if !multi.node(m).is_input => {
                    loaded.push(multi.node(m).name.clone())
                }
                NodeAction::Pruned => pruned.push(multi.node(m).name.clone()),
                _ => {}
            }
        }
        assert_eq!(loaded, vec!["bert/block5"]);
        assert!(pruned.iter().any(|n| n == "bert/block0"));
        assert!(pruned.iter().any(|n| n == "bert/embedding"));
    }

    #[test]
    fn solver_budget_exhaustion_degrades_gracefully() {
        // A zero node budget means no incumbent is ever found: the
        // materialization step must return an empty V (not panic), and the
        // unit planner must fall back to the no-reuse plan.
        let mut cfg = cfg_with_budget(1 << 30);
        cfg.milp_max_nodes = 0;
        let cands = vec![bert_candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg, 100);
        assert!(res.materialized.is_empty());

        let plan = plan_given_v(&multi, &[0], &res.materialized, &cfg);
        validate_plan(&multi, &[0], &res.materialized, &plan.actions).unwrap();
        let base = no_reuse_plan(&multi, &[0], &cfg);
        assert!((plan.cost_flops - base.cost_flops).abs() < 1.0);
    }

    #[test]
    fn grouped_and_ungrouped_milp_agree() {
        let mut cfg = cfg_with_budget(1 << 30);
        cfg.planner.flops_per_sec = 5e9;
        let cands = vec![
            bert_candidate(FeatureStrategy::LastHidden, 0.01),
            bert_candidate(FeatureStrategy::LastHidden, 0.02),
            bert_candidate(FeatureStrategy::SumLast4, 0.01),
        ];
        let multi = MultiModelGraph::build(&cands);
        let grouped = choose_materialization_grouped(&multi, &cands, &cfg, 100, true);
        let ungrouped = choose_materialization_grouped(&multi, &cands, &cfg, 100, false);
        assert_eq!(grouped.materialized, ungrouped.materialized);
        assert!((grouped.milp.objective - ungrouped.milp.objective).abs() < 1e-6);
        assert!(grouped.milp.num_vars < ungrouped.milp.num_vars);
    }

    #[test]
    fn fine_tune_plan_stops_at_frozen_frontier() {
        let mut cfg = cfg_with_budget(1 << 30);
        cfg.planner.flops_per_sec = 2e9;
        let rcfg = ResNetConfig::tiny(16);
        let cands = vec![CandidateModel {
            name: "ftu-3".into(),
            graph: fine_tune_model(&rcfg, 3, 2, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 5, optimizer: OptimizerSpec::sgd(0.01) },
            task: TaskKind::Classification,
        }];
        let multi = MultiModelGraph::build(&cands);
        let res = choose_materialization(&multi, &cands, &cfg, 200);
        // Can only materialize below block 13 (16-3). The deepest loadable
        // frontier is block12's output.
        for &m in &res.materialized {
            assert!(multi.node(m).materializable);
        }
        let plan = plan_given_v(&multi, &[0], &res.materialized, &cfg);
        validate_plan(&multi, &[0], &res.materialized, &plan.actions).unwrap();
        // Trainable blocks must be computed.
        for (&m, &a) in &plan.actions {
            if multi.node(m).name == "resnet/block15" {
                assert_eq!(a, NodeAction::Computed);
            }
        }
    }
}
