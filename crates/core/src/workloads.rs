//! The paper's five end-to-end workloads (Table 3).
//!
//! | Workload | Approach | Tuning | # models |
//! |---|---|---|---|
//! | FTR-1 | feature transfer, 6 strategies | batch {16,32} × lr {5,3,2}e-5 × epochs {5} | 36 |
//! | FTR-2 | feature transfer, 4 strategies | batch {16,32} × lr {5,3,2}e-5 × epochs {5} | 24 |
//! | FTR-3 | feature transfer, concat-last-4 | batch {16,32} × lr {5,3,2}e-5 × epochs {5,10} | 12 |
//! | ATR | adapters on last {1,2,3,4} hidden | batch {16,32} × lr {5,3,2}e-5 × epochs {5} | 24 |
//! | FTU | fine-tune last {3,6,9,12} blocks | batch {16,32} × lr {5,3,2}e-5 × epochs {5} | 24 |
//!
//! Two scales share all construction code: `Paper` builds
//! BERT-base/ResNet-50-like shapes-only graphs for the simulated backend
//! (500 records/cycle × 10 cycles, as §5); `Tiny` builds real-parameter
//! MiniBERT/MiniResNet graphs trainable on CPU.

use crate::spec::{expand_grid, CandidateModel, Hyper, ParamAssignment, SearchGrid};
use nautilus_data::{ImageDatasetConfig, NerDatasetConfig};
use nautilus_dnn::{OptimizerSpec, TaskKind};
use nautilus_models::bert::{
    adapter_model, feature_transfer_model, BertConfig, FeatureStrategy,
};
use nautilus_models::resnet::{fine_tune_model, ResNetConfig};
use nautilus_models::BuildScale;

/// Which of the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Feature transfer, all six strategies.
    Ftr1,
    /// Feature transfer, four strategies.
    Ftr2,
    /// Feature transfer, concat-last-4 with two epoch settings.
    Ftr3,
    /// Adapter training.
    Atr,
    /// Fine-tuning (ResNet on images).
    Ftu,
}

impl WorkloadKind {
    /// All five workloads in Table 3 order.
    pub const ALL: [WorkloadKind; 5] =
        [WorkloadKind::Ftr1, WorkloadKind::Ftr2, WorkloadKind::Ftr3, WorkloadKind::Atr, WorkloadKind::Ftu];

    /// Table 3 name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Ftr1 => "FTR-1",
            WorkloadKind::Ftr2 => "FTR-2",
            WorkloadKind::Ftr3 => "FTR-3",
            WorkloadKind::Atr => "ATR",
            WorkloadKind::Ftu => "FTU",
        }
    }
}

/// Build scale for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CPU-trainable miniatures with real parameters.
    Tiny,
    /// Paper-shaped (BERT-base / ResNet-50) shapes-only graphs.
    Paper,
}

/// A fully specified workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Which scale.
    pub scale: Scale,
}

impl WorkloadSpec {
    /// Model-selection cycles (§5: 10 cycles of 500 records).
    pub fn cycles(&self) -> usize {
        match self.scale {
            Scale::Paper => 10,
            Scale::Tiny => 3,
        }
    }

    /// `(train, valid)` records labeled per cycle (§5: 400/100).
    pub fn records_per_cycle(&self) -> (usize, usize) {
        match self.scale {
            Scale::Paper => (400, 100),
            Scale::Tiny => (24, 8),
        }
    }

    /// NER tag count used by the text workloads.
    pub fn num_tags(&self) -> usize {
        self.ner_config().num_tags()
    }

    /// Dataset generator for the text workloads' tiny scale.
    pub fn ner_config(&self) -> NerDatasetConfig {
        match self.scale {
            Scale::Tiny => NerDatasetConfig { vocab: 60, seq_len: 12, ..Default::default() },
            Scale::Paper => NerDatasetConfig { vocab: 30_522, seq_len: 128, ..Default::default() },
        }
    }

    /// Dataset generator for the image workload's tiny scale.
    pub fn image_config(&self) -> ImageDatasetConfig {
        match self.scale {
            Scale::Tiny => ImageDatasetConfig { size: 16, ..Default::default() },
            Scale::Paper => ImageDatasetConfig { size: 224, ..Default::default() },
        }
    }

    fn bert_config(&self) -> BertConfig {
        let ner = self.ner_config();
        match self.scale {
            Scale::Tiny => BertConfig::tiny(ner.seq_len, ner.vocab),
            Scale::Paper => BertConfig { seq_len: ner.seq_len, ..BertConfig::base_like() },
        }
    }

    fn resnet_config(&self) -> ResNetConfig {
        match self.scale {
            Scale::Tiny => ResNetConfig::tiny(16),
            Scale::Paper => ResNetConfig::resnet50_like(),
        }
    }

    fn build_scale(&self) -> BuildScale {
        match self.scale {
            Scale::Tiny => BuildScale::Real,
            Scale::Paper => BuildScale::ShapesOnly,
        }
    }

    fn batch_sizes(&self) -> Vec<f64> {
        match self.scale {
            Scale::Paper => vec![16.0, 32.0],
            Scale::Tiny => vec![4.0, 8.0],
        }
    }

    fn learning_rates(&self) -> Vec<f64> {
        match self.scale {
            Scale::Paper => vec![5e-5, 3e-5, 2e-5],
            // Tiny models learn with larger steps.
            Scale::Tiny => vec![5e-3, 3e-3, 2e-3],
        }
    }

    fn epochs_values(&self) -> Vec<f64> {
        let base = match self.scale {
            Scale::Paper => 5.0,
            Scale::Tiny => 2.0,
        };
        match self.kind {
            WorkloadKind::Ftr3 => vec![base, 2.0 * base],
            _ => vec![base],
        }
    }

    fn adapter_bottleneck(&self) -> usize {
        match self.scale {
            Scale::Paper => 64,
            Scale::Tiny => 8,
        }
    }

    fn hyper_of(&self, a: &ParamAssignment) -> Hyper {
        Hyper {
            batch_size: a["batch"].as_num() as usize,
            epochs: a["epochs"].as_num() as usize,
            optimizer: OptimizerSpec::adam(a["lr"].as_num() as f32),
        }
    }

    /// The search grid (Table 3's tuning-parameter columns).
    pub fn grid(&self) -> SearchGrid {
        let base = SearchGrid::new()
            .with_nums("batch", &self.batch_sizes())
            .with_nums("lr", &self.learning_rates())
            .with_nums("epochs", &self.epochs_values());
        match self.kind {
            WorkloadKind::Ftr1 => base.with_strs(
                "strategy",
                &[
                    "embedding",
                    "second-last-hidden",
                    "last-hidden",
                    "sum-last-4",
                    "concat-last-4",
                    "sum-all-hidden",
                ],
            ),
            WorkloadKind::Ftr2 => base.with_strs(
                "strategy",
                &["second-last-hidden", "last-hidden", "sum-last-4", "concat-last-4"],
            ),
            WorkloadKind::Ftr3 => base.with_strs("strategy", &["concat-last-4"]),
            WorkloadKind::Atr => base.with_nums("adapted_layers", &[1.0, 2.0, 3.0, 4.0]),
            WorkloadKind::Ftu => base.with_nums("unfrozen_blocks", &[3.0, 6.0, 9.0, 12.0]),
        }
    }

    /// Builds the candidate set `Q` through the grid + init-function API.
    pub fn candidates(&self) -> Result<Vec<CandidateModel>, String> {
        let spec = *self;
        expand_grid(&self.grid(), &move |a: &ParamAssignment| spec.init_candidate(a))
    }

    /// The model-initialization function (paper §3's user-provided hook).
    pub fn init_candidate(&self, a: &ParamAssignment) -> Result<CandidateModel, String> {
        let hyper = self.hyper_of(a);
        let scale = self.build_scale();
        match self.kind {
            WorkloadKind::Ftr1 | WorkloadKind::Ftr2 | WorkloadKind::Ftr3 => {
                let strategy = parse_strategy(a["strategy"].as_str())?;
                let graph =
                    feature_transfer_model(&self.bert_config(), strategy, self.num_tags(), scale)
                        .map_err(|e| e.to_string())?;
                Ok(CandidateModel {
                    name: format!(
                        "{}/{}-b{}-lr{}-e{}",
                        self.kind.name(),
                        strategy.label(),
                        hyper.batch_size,
                        a["lr"],
                        hyper.epochs
                    ),
                    graph,
                    hyper,
                    task: TaskKind::TokenTagging,
                })
            }
            WorkloadKind::Atr => {
                let k = a["adapted_layers"].as_num() as usize;
                let graph = adapter_model(
                    &self.bert_config(),
                    k,
                    self.adapter_bottleneck(),
                    self.num_tags(),
                    scale,
                )
                .map_err(|e| e.to_string())?;
                Ok(CandidateModel {
                    name: format!(
                        "ATR/adapt{}-b{}-lr{}",
                        k, hyper.batch_size, a["lr"]
                    ),
                    graph,
                    hyper,
                    task: TaskKind::TokenTagging,
                })
            }
            WorkloadKind::Ftu => {
                let k = a["unfrozen_blocks"].as_num() as usize;
                let graph = fine_tune_model(&self.resnet_config(), k, 2, scale)
                    .map_err(|e| e.to_string())?;
                Ok(CandidateModel {
                    name: format!(
                        "FTU/tune{}-b{}-lr{}",
                        k, hyper.batch_size, a["lr"]
                    ),
                    graph,
                    hyper,
                    task: TaskKind::Classification,
                })
            }
        }
    }

    /// The Fig 9 variant: FTR-2 fixed to concat-last-4 at batch 16 with
    /// `n` learning rates (so `n` models).
    pub fn ftr2_vary_models(&self, n: usize) -> Result<Vec<CandidateModel>, String> {
        let lrs: Vec<f64> = (0..n).map(|i| 5e-5 / (1.0 + i as f64)).collect();
        let batch = self.batch_sizes()[0];
        let epochs = self.epochs_values()[0];
        let grid = SearchGrid::new()
            .with_nums("batch", &[batch])
            .with_nums("lr", &lrs)
            .with_nums("epochs", &[epochs])
            .with_strs("strategy", &["concat-last-4"]);
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: self.scale };
        expand_grid(&grid, &move |a: &ParamAssignment| spec.init_candidate(a))
    }
}

fn parse_strategy(s: &str) -> Result<FeatureStrategy, String> {
    FeatureStrategy::ALL
        .into_iter()
        .find(|f| f.label() == s)
        .ok_or_else(|| format!("unknown feature strategy '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_model_counts() {
        for (kind, expected) in [
            (WorkloadKind::Ftr1, 36),
            (WorkloadKind::Ftr2, 24),
            (WorkloadKind::Ftr3, 12),
            (WorkloadKind::Atr, 24),
            (WorkloadKind::Ftu, 24),
        ] {
            let spec = WorkloadSpec { kind, scale: Scale::Tiny };
            assert_eq!(spec.grid().len(), expected, "{}", kind.name());
        }
    }

    #[test]
    fn tiny_candidates_build_and_validate() {
        for kind in [WorkloadKind::Ftr3, WorkloadKind::Atr, WorkloadKind::Ftu] {
            let spec = WorkloadSpec { kind, scale: Scale::Tiny };
            let cands = spec.candidates().unwrap();
            assert_eq!(cands.len(), spec.grid().len());
            for c in &cands {
                c.graph.validate().unwrap();
                assert!(!c.graph.node(nautilus_dnn::NodeId(0)).params.is_empty() || c.graph.node(nautilus_dnn::NodeId(0)).param_shapes.is_empty());
            }
        }
    }

    #[test]
    fn paper_candidates_are_shapes_only() {
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
        let cands = spec.candidates().unwrap();
        assert_eq!(cands.len(), 24);
        for c in &cands {
            for n in c.graph.nodes() {
                assert!(n.params.is_empty(), "paper scale must not allocate weights");
            }
        }
        // BERT-base-like size.
        let params = cands[0].graph.params_bytes() / 4;
        assert!(params > 80_000_000, "params {params}");
    }

    #[test]
    fn ftr3_epoch_variants() {
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr3, scale: Scale::Tiny };
        let cands = spec.candidates().unwrap();
        let epochs: std::collections::BTreeSet<usize> =
            cands.iter().map(|c| c.hyper.epochs).collect();
        assert_eq!(epochs.into_iter().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn vary_models_builds_n_candidates() {
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Tiny };
        for n in [1usize, 3, 6] {
            let cands = spec.ftr2_vary_models(n).unwrap();
            assert_eq!(cands.len(), n);
            // All share one architecture: one interchangeable group.
            let multi = crate::multimodel::MultiModelGraph::build(&cands);
            assert_eq!(multi.interchangeable_groups().len(), 1);
        }
    }

    #[test]
    fn cycles_and_records_match_paper() {
        let spec = WorkloadSpec { kind: WorkloadKind::Ftr2, scale: Scale::Paper };
        assert_eq!(spec.cycles(), 10);
        assert_eq!(spec.records_per_cycle(), (400, 100));
    }
}
