//! Model fusion optimization (paper §4.3, Algorithm 1).
//!
//! Starting from one training unit per candidate (each already rewritten
//! against the materialized set `V`), the greedy pairing repeatedly fuses
//! the pair of units with the largest training-cost reduction
//! `c = C(M_i^opt) + C(M_j^opt) − C(M_ij^opt)` whose fused plan fits the
//! runtime memory budget `Bmem` (checked with the §4.3.3 live-tensor
//! estimator). Units are fusible only when they share a mini-batch size
//! (the paper's requirement); members may differ in epoch count — the unit
//! trains for the maximum and each member's optimizer stops stepping after
//! its own budget, so fused SGD stays step-for-step equivalent to solo
//! training. Costs are therefore *epoch-weighted*: present layers run for
//! the unit's maximum epochs while each member's backward-pass surcharge
//! runs only for that member's epochs ([`unit_cost_flops`]).
//!
//! Pair evaluations are cached by unit identity, so each merge only costs
//! `O(n)` new reuse-plan solves rather than re-evaluating all pairs.

use crate::config::SystemConfig;
use crate::mat_opt::{plan_given_v, NodeAction, UnitPlan};
use crate::memory::{estimate_peak_memory, MemoryEstimate};
use crate::multimodel::{MNodeId, MultiModelGraph};
use crate::spec::CandidateModel;
use nautilus_dnn::OptimizerSpec;
use nautilus_util::telemetry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A training unit: one or more fused candidate models and their shared
/// reuse plan.
#[derive(Debug, Clone)]
pub struct TrainUnit {
    /// Candidate indices trained by this unit.
    pub members: Vec<usize>,
    /// The unit's reuse plan over merged nodes.
    pub plan: UnitPlan,
    /// Shared mini-batch size.
    pub batch_size: usize,
    /// Unit epoch count: the maximum over members (members with smaller
    /// budgets stop updating after their own epochs).
    pub epochs: usize,
    /// Per-member epoch budgets, aligned with `members`.
    pub member_epochs: Vec<usize>,
    /// Epoch-weighted training cost (planner FLOPs per record for the whole
    /// cycle's epochs).
    pub weighted_cost_flops: f64,
    /// Estimated peak training memory.
    pub memory: MemoryEstimate,
}

fn optimizer_state_factor(spec: &OptimizerSpec) -> f64 {
    match spec {
        OptimizerSpec::Sgd { momentum, .. } => {
            if *momentum == 0.0 {
                0.0
            } else {
                1.0
            }
        }
        OptimizerSpec::Adam { .. } => 2.0,
    }
}

fn unit_state_factor(candidates: &[CandidateModel], members: &[usize]) -> f64 {
    members
        .iter()
        .map(|&m| optimizer_state_factor(&candidates[m].hyper.optimizer))
        .fold(0.0, f64::max)
}

/// The backward-pass surcharge (in planner FLOPs per record) a single
/// member adds on top of the shared forward work: `(multiplier − 1) ×
/// forward` summed over the member's *computed* layers. Shared
/// materializable layers have multiplier 1 and contribute nothing, so this
/// is exactly the per-member branch cost.
pub fn member_extra_flops(
    multi: &MultiModelGraph,
    actions: &BTreeMap<MNodeId, NodeAction>,
    member: usize,
) -> f64 {
    let mut seen = BTreeSet::new();
    let mut extra = 0.0;
    for &m in &multi.mappings[member].node_to_merged {
        if !seen.insert(m) {
            continue;
        }
        if actions.get(&m).copied() == Some(NodeAction::Computed) {
            let p = &multi.node(m).profile;
            extra += (p.ccomp_multiplier() - 1) as f64 * p.fwd_flops as f64;
        }
    }
    extra
}

/// Epoch-weighted training cost of a (possibly fused) unit, in planner
/// FLOPs per record over the whole cycle: every present layer's forward
/// (or load) runs for the unit's maximum epochs, and each member's
/// backward surcharge runs for that member's own epochs.
pub fn unit_cost_flops(
    multi: &MultiModelGraph,
    actions: &BTreeMap<MNodeId, NodeAction>,
    candidates: &[CandidateModel],
    members: &[usize],
    cfg: &SystemConfig,
) -> f64 {
    let max_e =
        members.iter().map(|&m| candidates[m].hyper.epochs).max().unwrap_or(1) as f64;
    let mut total = 0.0;
    for (&m, &a) in actions {
        let node = multi.node(m);
        match a {
            NodeAction::Pruned => {}
            NodeAction::Loaded => {
                total += cfg.planner.load_cost_flops(node.profile.out_bytes) * max_e;
            }
            NodeAction::Computed => {
                total += node.profile.fwd_flops as f64 * max_e;
            }
        }
    }
    for &mi in members {
        total += member_extra_flops(multi, actions, mi) * candidates[mi].hyper.epochs as f64;
    }
    total
}

fn build_unit(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    members: Vec<usize>,
    v: &BTreeSet<MNodeId>,
    cfg: &SystemConfig,
) -> TrainUnit {
    let plan = plan_given_v(multi, &members, v, cfg);
    let batch_size = candidates[members[0]].hyper.batch_size;
    let member_epochs: Vec<usize> =
        members.iter().map(|&m| candidates[m].hyper.epochs).collect();
    let epochs = member_epochs.iter().copied().max().unwrap_or(1);
    let weighted_cost_flops = unit_cost_flops(multi, &plan.actions, candidates, &members, cfg);
    let memory = estimate_peak_memory(
        multi,
        &plan.actions,
        batch_size,
        cfg.workspace_bytes,
        unit_state_factor(candidates, &members),
    );
    TrainUnit { members, plan, batch_size, epochs, member_epochs, weighted_cost_flops, memory }
}

/// Runs Algorithm 1. With `enabled = false` every candidate stays its own
/// unit (used by the MAT-only ablation and the baselines).
pub fn fuse_models(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    v: &BTreeSet<MNodeId>,
    cfg: &SystemConfig,
    enabled: bool,
) -> Vec<TrainUnit> {
    let _sp = telemetry::span("planner", "planner.fuse");
    // Q' := singleton units with their optimal reuse plans.
    let mut next_id = 0u64;
    let mut units: Vec<(u64, TrainUnit)> = (0..candidates.len())
        .map(|i| {
            let id = next_id;
            next_id += 1;
            (id, build_unit(multi, candidates, vec![i], v, cfg))
        })
        .collect();
    if !enabled || units.len() < 2 {
        return units.into_iter().map(|(_, u)| u).collect();
    }

    // Pair-evaluation cache: (id_lo, id_hi) -> Some(reduction, fused unit)
    // when fusible with positive gain, None otherwise.
    let mut cache: HashMap<(u64, u64), Option<(f64, TrainUnit)>> = HashMap::new();

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..units.len() {
            for b in (a + 1)..units.len() {
                let (ida, ua) = (&units[a].0, &units[a].1);
                let (idb, ub) = (&units[b].0, &units[b].1);
                if ua.batch_size != ub.batch_size {
                    continue;
                }
                let key = (*ida.min(idb), *ida.max(idb));
                let entry = cache.entry(key).or_insert_with(|| {
                    let mut members: Vec<usize> =
                        ua.members.iter().chain(&ub.members).copied().collect();
                    members.sort_unstable();
                    let fused = build_unit(multi, candidates, members, v, cfg);
                    if fused.memory.total() > cfg.memory_budget_bytes {
                        return None;
                    }
                    let reduction = ua.weighted_cost_flops + ub.weighted_cost_flops
                        - fused.weighted_cost_flops;
                    if reduction > 1e-6 {
                        Some((reduction, fused))
                    } else {
                        None
                    }
                });
                if let Some((reduction, _)) = entry {
                    let r = *reduction;
                    if best.is_none_or(|(_, _, br)| r > br) {
                        best = Some((a, b, r));
                    }
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        let key = (
            units[a].0.min(units[b].0),
            units[a].0.max(units[b].0),
        );
        let (_, fused) = cache
            .remove(&key)
            .flatten()
            .expect("best pair came from cache");
        // Remove b first (higher index), then a.
        units.remove(b);
        units.remove(a);
        let id = next_id;
        next_id += 1;
        units.push((id, fused));
    }

    units.sort_by_key(|(_, u)| u.members[0]);
    units.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Hyper;
    use nautilus_dnn::TaskKind;
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;

    fn candidate(strategy: FeatureStrategy, lr: f32, batch: usize, epochs: usize) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: format!("{}-{lr}-b{batch}-e{epochs}", strategy.label()),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: batch, epochs, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    fn tiny_cfg() -> SystemConfig {
        SystemConfig::tiny()
    }

    #[test]
    fn disabled_fusion_keeps_singletons() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 8, 2),
            candidate(FeatureStrategy::LastHidden, 0.02, 8, 2),
        ];
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), false);
        assert_eq!(units.len(), 2);
        assert!(units.iter().all(|u| u.members.len() == 1));
    }

    #[test]
    fn shared_backbone_models_fuse() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 8, 2),
            candidate(FeatureStrategy::LastHidden, 0.02, 8, 2),
            candidate(FeatureStrategy::SumLast4, 0.01, 8, 2),
        ];
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), true);
        assert_eq!(units.len(), 1, "all three share the frozen backbone");
        assert_eq!(units[0].members, vec![0, 1, 2]);
        // Fused cost strictly below the sum of solo costs.
        let solo: f64 = (0..3)
            .map(|i| plan_given_v(&multi, &[i], &BTreeSet::new(), &tiny_cfg()).cost_flops)
            .sum();
        assert!(units[0].plan.cost_flops < solo);
    }

    #[test]
    fn different_batch_sizes_never_fuse() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 8, 2),
            candidate(FeatureStrategy::LastHidden, 0.02, 16, 2),
        ];
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), true);
        assert_eq!(units.len(), 2);
    }

    #[test]
    fn different_epochs_fuse_with_epoch_weighted_gain() {
        // A shared backbone dominates the branch cost, so fusing a 2-epoch
        // and a 4-epoch model pays off: the backbone runs 4 epochs instead
        // of 2 + 4 = 6.
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01, 8, 2),
            candidate(FeatureStrategy::LastHidden, 0.02, 8, 4),
        ];
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), true);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].epochs, 4);
        assert_eq!(units[0].member_epochs, vec![2, 4]);
        // Weighted cost strictly below the sum of solo weighted costs.
        let solo: f64 = (0..2)
            .map(|i| {
                let plan = plan_given_v(&multi, &[i], &BTreeSet::new(), &tiny_cfg());
                unit_cost_flops(&multi, &plan.actions, &cands, &[i], &tiny_cfg())
            })
            .sum();
        assert!(units[0].weighted_cost_flops < solo);
    }

    #[test]
    fn epoch_weighted_cost_matches_hand_formula() {
        // Singleton unit: weighted cost == per-record ccomp x epochs.
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01, 8, 3)];
        let multi = MultiModelGraph::build(&cands);
        let plan = plan_given_v(&multi, &[0], &BTreeSet::new(), &tiny_cfg());
        let weighted = unit_cost_flops(&multi, &plan.actions, &cands, &[0], &tiny_cfg());
        // no_reuse per-record cost (fwd+extras+input load) x 3 epochs.
        assert!((weighted - 3.0 * plan.cost_flops).abs() < 1e-3 * weighted.abs().max(1.0),
            "weighted {weighted} vs 3x per-record {}", 3.0 * plan.cost_flops);
    }

    #[test]
    fn memory_budget_limits_fusion() {
        let cands: Vec<CandidateModel> = (0..4)
            .map(|i| candidate(FeatureStrategy::LastHidden, 0.01 + i as f32 * 0.01, 8, 2))
            .collect();
        let multi = MultiModelGraph::build(&cands);
        let generous = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), true);
        assert_eq!(generous.len(), 1);

        // A budget just above a single unit's need blocks all fusion.
        let solo_mem = generous_solo_mem(&multi, &cands);
        let tight = tiny_cfg().into_builder().memory_budget_bytes(solo_mem + 1024).build();
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tight, true);
        assert_eq!(units.len(), 4, "no pair fits in the tight budget");
        for u in &units {
            assert!(u.memory.total() <= tight.memory_budget_bytes + u.memory.total());
        }
    }

    fn generous_solo_mem(multi: &MultiModelGraph, cands: &[CandidateModel]) -> u64 {
        let cfg = tiny_cfg();
        build_unit(multi, cands, vec![0], &BTreeSet::new(), &cfg).memory.total()
    }

    #[test]
    fn all_members_covered_exactly_once() {
        let cands: Vec<CandidateModel> = (0..5)
            .map(|i| {
                candidate(
                    if i % 2 == 0 { FeatureStrategy::LastHidden } else { FeatureStrategy::SumLast4 },
                    0.01 + i as f32 * 0.005,
                    if i < 3 { 8 } else { 16 },
                    2,
                )
            })
            .collect();
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &tiny_cfg(), true);
        let mut covered: Vec<usize> = units.iter().flat_map(|u| u.members.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        // Two batch-size families -> at least two units.
        assert!(units.len() >= 2);
    }
}
