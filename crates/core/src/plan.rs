//! Executable reuse-plan construction.
//!
//! Converts a [`TrainUnit`]'s merged-node actions into a runnable
//! [`ModelGraph`]: pruned nodes vanish, loaded nodes become input
//! placeholders fed from the feature store (or the raw dataset), computed
//! nodes are cloned from their exemplar candidate with parameters and
//! frozen flags intact. Each member keeps its own output head and its own
//! trainable branch, so the Trainer can attach one optimizer per member
//! (paper §3).

use crate::fusion::TrainUnit;
use crate::mat_opt::NodeAction;
use crate::multimodel::{MNodeId, MultiModelGraph};
use crate::spec::CandidateModel;
use nautilus_dnn::graph::{GraphError, ModelGraph, NodeId, ParamInit};
use nautilus_tensor::Shape;
use std::collections::BTreeMap;

/// Where a plan input placeholder gets its data.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanFeed {
    /// Raw model input: fed from the labeled dataset.
    Raw {
        /// The plan graph's input node.
        plan_node: NodeId,
        /// The merged node it stands for.
        merged: MNodeId,
    },
    /// Materialized intermediate: fed from the feature store under `key`.
    Materialized {
        /// The plan graph's input node.
        plan_node: NodeId,
        /// The merged node it stands for.
        merged: MNodeId,
        /// Feature-store key.
        key: String,
        /// Per-record shape (for diagnostics / store validation).
        shape: Shape,
    },
}

/// A runnable reuse plan for one training unit.
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    /// The rewritten graph.
    pub graph: ModelGraph,
    /// Data feeds for every input placeholder.
    pub feeds: Vec<PlanFeed>,
    /// `(candidate index, plan output node)` per member.
    pub member_outputs: Vec<(usize, NodeId)>,
    /// `(candidate index, trainable plan nodes)` per member.
    pub member_trainables: Vec<(usize, Vec<NodeId>)>,
    /// Merged-node → plan-node mapping.
    pub merged_to_plan: BTreeMap<MNodeId, NodeId>,
}

impl ExecutablePlan {
    /// Builds the executable plan for `unit`.
    pub fn build(
        multi: &MultiModelGraph,
        candidates: &[CandidateModel],
        unit: &TrainUnit,
    ) -> Result<ExecutablePlan, GraphError> {
        let mut graph = ModelGraph::new();
        let mut merged_to_plan: BTreeMap<MNodeId, NodeId> = BTreeMap::new();
        let mut feeds = Vec::new();

        // Membership: candidate index -> set of merged nodes it maps to.
        let member_merged: Vec<(usize, Vec<bool>)> = unit
            .members
            .iter()
            .map(|&mi| {
                let mut owned = vec![false; multi.nodes.len()];
                for &m in &multi.mappings[mi].node_to_merged {
                    owned[m.index()] = true;
                }
                (mi, owned)
            })
            .collect();

        for (i, (&m, &action)) in unit.plan.actions.iter().enumerate() {
            let mnode = multi.node(m);
            match action {
                NodeAction::Pruned => {}
                NodeAction::Loaded => {
                    let shape = mnode.out_shape().clone();
                    let plan_node = graph.add_input(
                        format!("load{}:{}", i, mnode.name),
                        shape.clone(),
                    );
                    merged_to_plan.insert(m, plan_node);
                    feeds.push(if mnode.is_input {
                        PlanFeed::Raw { plan_node, merged: m }
                    } else {
                        PlanFeed::Materialized {
                            plan_node,
                            merged: m,
                            key: mnode.key.clone(),
                            shape,
                        }
                    });
                }
                NodeAction::Computed => {
                    let (mi, nid) = mnode.exemplar;
                    let src = candidates[mi].graph.node(nid);
                    let inputs: Vec<NodeId> = mnode
                        .parents
                        .iter()
                        .map(|p| {
                            merged_to_plan.get(p).copied().ok_or_else(|| {
                                GraphError::Layer(format!(
                                    "computed node '{}' depends on pruned parent '{}'",
                                    mnode.name,
                                    multi.node(*p).name
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let init = if src.params.is_empty() && !src.param_shapes.is_empty() {
                        ParamInit::ShapesOnly { sig: src.param_sig }
                    } else {
                        ParamInit::Given(src.params.clone())
                    };
                    let plan_node = graph.add_layer(
                        format!("n{}:{}", i, mnode.name),
                        src.kind.clone(),
                        &inputs,
                        src.frozen,
                        init,
                    )?;
                    merged_to_plan.insert(m, plan_node);
                }
            }
        }

        let mut member_outputs = Vec::with_capacity(unit.members.len());
        let mut member_trainables = Vec::with_capacity(unit.members.len());
        for (mi, owned) in &member_merged {
            let mapping = &multi.mappings[*mi];
            let mut outs = Vec::new();
            for &o in &mapping.outputs {
                let plan_node = merged_to_plan.get(&o).copied().ok_or_else(|| {
                    GraphError::Layer(format!(
                        "member {mi} output '{}' missing from plan",
                        multi.node(o).name
                    ))
                })?;
                graph.add_output(plan_node)?;
                outs.push(plan_node);
            }
            debug_assert_eq!(outs.len(), 1, "one output head per candidate");
            member_outputs.push((*mi, outs[0]));

            let trainables: Vec<NodeId> = merged_to_plan
                .iter()
                .filter(|(m, _)| owned[m.index()])
                .filter(|(_, &p)| graph.node(p).trainable())
                .map(|(_, &p)| p)
                .collect();
            member_trainables.push((*mi, trainables));
        }

        graph.validate()?;
        Ok(ExecutablePlan { graph, feeds, member_outputs, member_trainables, merged_to_plan })
    }

    /// Keys of materialized features this plan loads.
    pub fn materialized_keys(&self) -> Vec<&str> {
        self.feeds
            .iter()
            .filter_map(|f| match f {
                PlanFeed::Materialized { key, .. } => Some(key.as_str()),
                PlanFeed::Raw { .. } => None,
            })
            .collect()
    }

    /// Checkpoint size of this plan's trainable state (what Nautilus writes
    /// after training, vs. Current Practice's full-model checkpoints).
    pub fn trainable_checkpoint_bytes(&self) -> u64 {
        nautilus_dnn::checkpoint::checkpoint_bytes(&self.graph, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse_models;
    use crate::mat_opt::{choose_materialization, loads_of};
    use crate::spec::Hyper;
    use crate::SystemConfig;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;
    use std::collections::BTreeSet;

    fn candidate(strategy: FeatureStrategy, lr: f32) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: format!("{}-{lr}", strategy.label()),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 2, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    #[test]
    fn no_reuse_plan_reproduces_candidate_graph() {
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let cfg = SystemConfig::tiny();
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        assert_eq!(plan.graph.len(), cands[0].graph.len());
        assert_eq!(plan.member_outputs.len(), 1);
        assert_eq!(plan.feeds.len(), 1); // raw input only
        assert!(matches!(plan.feeds[0], PlanFeed::Raw { .. }));
        assert_eq!(plan.member_trainables[0].1.len(), 2);
    }

    #[test]
    fn loaded_features_replace_backbone() {
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let mut cfg = SystemConfig::tiny();
        cfg.planner.flops_per_sec = 1e9; // make loading attractive
        let res = choose_materialization(&multi, &cands, &cfg, 64);
        assert!(!res.materialized.is_empty());
        let units = fuse_models(&multi, &cands, &res.materialized, &cfg, true);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        // Plan: loaded feature input + head transformer + classifier.
        assert!(plan.graph.len() <= 4, "plan has {} nodes", plan.graph.len());
        assert_eq!(plan.materialized_keys().len(), 1);
        let loads = loads_of(&multi, &units[0].plan.actions);
        assert_eq!(loads.len(), 1);
        // Loaded feature shape matches the backbone output.
        match &plan.feeds[0] {
            PlanFeed::Materialized { shape, .. } => {
                assert_eq!(shape.0, vec![8, 32]);
            }
            f => panic!("expected materialized feed, got {f:?}"),
        }
    }

    #[test]
    fn fused_plan_shares_trunk_and_separates_branches() {
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01),
            candidate(FeatureStrategy::LastHidden, 0.02),
        ];
        let multi = MultiModelGraph::build(&cands);
        let cfg = SystemConfig::tiny();
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true);
        assert_eq!(units.len(), 1);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        // Shared: input + embedding + 6 blocks (8). Separate: 2 heads each.
        assert_eq!(plan.graph.len(), 8 + 4);
        assert_eq!(plan.member_outputs.len(), 2);
        assert_ne!(plan.member_outputs[0].1, plan.member_outputs[1].1);
        // Branch trainables are disjoint.
        let t0: BTreeSet<NodeId> = plan.member_trainables[0].1.iter().copied().collect();
        let t1: BTreeSet<NodeId> = plan.member_trainables[1].1.iter().copied().collect();
        assert!(t0.is_disjoint(&t1));
        assert_eq!(t0.len(), 2);
        assert_eq!(t1.len(), 2);
        // Branch parameters start identical (same architecture seed) but are
        // distinct tensors.
        plan.graph.validate().unwrap();
    }

    #[test]
    fn checkpoint_bytes_smaller_than_full_model() {
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let cfg = SystemConfig::tiny();
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        let full = nautilus_dnn::checkpoint::checkpoint_bytes(&cands[0].graph, false);
        assert!(plan.trainable_checkpoint_bytes() < full);
    }
}
