//! Top-level error type for user-facing entry points.
//!
//! Library crates keep their precise error enums ([`TensorError`],
//! [`SessionError`], [`GraphError`], ...), but application code — the
//! examples, quickstarts, and any binary driving [`crate::ModelSelection`] —
//! wants a single type so `?` works across every layer. [`NautilusError`]
//! is that type: it implements [`std::error::Error`] and converts from each
//! layer's error, so `fn main() -> Result<(), NautilusError>` needs no
//! `map_err` boilerplate.

use crate::session::SessionError;
use nautilus_dnn::graph::GraphError;
use nautilus_store::StoreError;
use nautilus_tensor::TensorError;
use std::fmt;

/// Unified error for application code built on the nautilus crates.
#[derive(Debug)]
pub enum NautilusError {
    /// Tensor construction or kernel failure.
    Tensor(TensorError),
    /// Model-selection session failure (planning, materialization, training).
    Session(SessionError),
    /// Model graph construction failure.
    Graph(GraphError),
    /// Feature/checkpoint store failure.
    Store(StoreError),
    /// Anything stringly-typed (workload spec expansion, ad-hoc validation).
    Other(String),
}

impl fmt::Display for NautilusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NautilusError::Tensor(e) => write!(f, "tensor: {e}"),
            NautilusError::Session(e) => write!(f, "session: {e}"),
            NautilusError::Graph(e) => write!(f, "graph: {e}"),
            NautilusError::Store(e) => write!(f, "store: {e}"),
            NautilusError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for NautilusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NautilusError::Tensor(e) => Some(e),
            NautilusError::Session(e) => Some(e),
            NautilusError::Graph(e) => Some(e),
            NautilusError::Store(e) => Some(e),
            NautilusError::Other(_) => None,
        }
    }
}

impl From<TensorError> for NautilusError {
    fn from(e: TensorError) -> Self {
        NautilusError::Tensor(e)
    }
}

impl From<SessionError> for NautilusError {
    fn from(e: SessionError) -> Self {
        NautilusError::Session(e)
    }
}

impl From<GraphError> for NautilusError {
    fn from(e: GraphError) -> Self {
        NautilusError::Graph(e)
    }
}

impl From<StoreError> for NautilusError {
    fn from(e: StoreError) -> Self {
        NautilusError::Store(e)
    }
}

impl From<String> for NautilusError {
    fn from(m: String) -> Self {
        NautilusError::Other(m)
    }
}

impl From<&str> for NautilusError {
    fn from(m: &str) -> Self {
        NautilusError::Other(m.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn converts_from_layer_errors() {
        let t: NautilusError = TensorError::Incompatible("bad".into()).into();
        assert!(matches!(t, NautilusError::Tensor(_)));
        let s: NautilusError = SessionError::Invalid("empty".into()).into();
        assert!(matches!(s, NautilusError::Session(_)));
        let o: NautilusError = "oops".into();
        assert!(matches!(o, NautilusError::Other(_)));
    }

    #[test]
    fn display_and_source_reflect_the_layer() {
        let e: NautilusError = SessionError::Invalid("empty candidate set".into()).into();
        assert!(e.to_string().contains("empty candidate set"));
        assert!(e.source().is_some());
        let o = NautilusError::Other("plain".into());
        assert!(o.source().is_none());
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn inner() -> Result<(), NautilusError> {
            Err(TensorError::Incompatible("shape".into()))?;
            Ok(())
        }
        assert!(inner().is_err());
    }
}
