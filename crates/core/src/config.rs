//! System configuration: budgets, planner cost constants, and the hardware
//! profile used by the simulated backend.

use nautilus_util::json_struct;

/// Cost constants the *optimizer* uses (paper §3, user-overridable system
/// config). These intentionally differ from the simulated hardware profile:
/// the paper configures its planner with 500 MB/s disk and 6 TFLOP/s (50% of
/// Titan X peak), conservative relative to page-cache-served reads and
/// optimistic relative to small-batch GPU efficiency.
#[derive(Debug, Clone, Copy)]
pub struct PlannerCosts {
    /// Assumed disk read throughput in bytes/second.
    pub disk_bytes_per_sec: f64,
    /// Assumed compute throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Assumed network throughput in bytes/second for shipping materialized
    /// features to remote workers. `0` (the default) means "single box, no
    /// wire": the load-cost model charges disk only. The distributed
    /// coordinator sets this from its network micro-probe when
    /// `DistConfig::calibrate_net` is on, extending the measured-I/O
    /// calibration of `IoConfig::calibrate` to bytes over the wire.
    pub net_bytes_per_sec: f64,
}

json_struct!(PlannerCosts { disk_bytes_per_sec, flops_per_sec, net_bytes_per_sec });

impl Default for PlannerCosts {
    fn default() -> Self {
        PlannerCosts { disk_bytes_per_sec: 500e6, flops_per_sec: 6e12, net_bytes_per_sec: 0.0 }
    }
}

impl PlannerCosts {
    /// Converts a byte count into "missed compute" FLOPs — the paper's
    /// `cload` metric: load time × compute throughput. When a network
    /// bandwidth is configured (distributed execution), loading a
    /// materialized chunk also pays a serial transfer leg: disk seconds +
    /// wire seconds, both converted to missed compute.
    pub fn load_cost_flops(&self, bytes: u64) -> f64 {
        let mut secs = bytes as f64 / self.disk_bytes_per_sec;
        if self.net_bytes_per_sec > 0.0 {
            secs += bytes as f64 / self.net_bytes_per_sec;
        }
        secs * self.flops_per_sec
    }
}

/// Hardware behavior of the simulated backend.
///
/// `achieved_flops_per_sec` is deliberately below the planner's assumption
/// (small-batch DL training does not reach 50% of peak), and cached reads
/// run at DRAM speed — together these reproduce the regime in which the
/// paper's results live (selective materialization beats both recompute-
/// everything and load-everything).
#[derive(Debug, Clone, Copy)]
pub struct HardwareProfile {
    /// Sustained training throughput in FLOP/s.
    pub achieved_flops_per_sec: f64,
    /// Raw disk throughput in bytes/second (reads that miss cache; writes).
    pub disk_bytes_per_sec: f64,
    /// Page-cache-served read throughput in bytes/second.
    pub dram_bytes_per_sec: f64,
    /// Bytes of DRAM available to the page-cache model.
    pub page_cache_bytes: u64,
    /// Fixed cost of setting up one training session (model build, device
    /// placement, data pipeline) per training unit per cycle, seconds.
    pub session_overhead_secs: f64,
    /// Fixed per-epoch overhead (shuffle, pipeline warmup), seconds.
    pub epoch_overhead_secs: f64,
    /// Fixed per-mini-batch overhead (kernel launches, host sync), seconds.
    pub batch_overhead_secs: f64,
}

json_struct!(HardwareProfile {
    achieved_flops_per_sec,
    disk_bytes_per_sec,
    dram_bytes_per_sec,
    page_cache_bytes,
    session_overhead_secs,
    epoch_overhead_secs,
    batch_overhead_secs
});

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile {
            achieved_flops_per_sec: 5e12,
            disk_bytes_per_sec: 500e6,
            dram_bytes_per_sec: 8e9,
            page_cache_bytes: 6 * (1 << 30),
            session_overhead_secs: 3.0,
            epoch_overhead_secs: 0.3,
            batch_overhead_secs: 0.002,
        }
    }
}

/// Feature-store I/O scheduling and calibration knobs.
///
/// `prefetch`/`write_behind` control the asynchronous store pipeline
/// (epoch-aware readahead for training scans, deferred chunk writes for
/// materialization output). Both preserve bit-exact results — only the
/// overlap of I/O with compute changes. `calibrate` replaces the planner's
/// static `PlannerCosts::disk_bytes_per_sec` with a startup micro-probe of
/// the actual machine, re-blended with the observed page-cache hit curve
/// at every re-plan.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Overlap feature reads with training compute (double-buffered,
    /// epoch-aware readahead on dedicated I/O threads).
    pub prefetch: bool,
    /// Dedicated I/O threads per prefetcher / write-behind engine.
    pub io_threads: usize,
    /// Defer materialization chunk writes to I/O threads (readers barrier
    /// on in-flight chunks).
    pub write_behind: bool,
    /// Measure disk bandwidth at session start and feed it to MAT-OPT
    /// instead of the static planner constant.
    pub calibrate: bool,
    /// Bytes transferred per calibration measurement.
    pub calibrate_probe_bytes: u64,
    /// Failure-injection hook: artificial delay added to every chunk fetch
    /// on the I/O threads, milliseconds. Tests use this to prove the
    /// trainer *blocks* on slow prefetches instead of consuming stale
    /// buffers. Leave 0 in production.
    pub read_delay_ms: u64,
}

json_struct!(IoConfig {
    prefetch,
    io_threads,
    write_behind,
    calibrate,
    calibrate_probe_bytes,
    read_delay_ms
});

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            prefetch: true,
            io_threads: 2,
            write_behind: true,
            calibrate: false,
            calibrate_probe_bytes: 4 << 20,
            read_delay_ms: 0,
        }
    }
}

/// Knobs for the online inference server (`nautilus-serve`).
///
/// The serving layer lives downstream of training: a session exports its
/// best trained model and the server answers prediction requests over a
/// loopback HTTP endpoint, micro-batching concurrent requests into one
/// forward pass. These knobs bound its queues and batching behavior.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Maximum records fused into one forward pass by the micro-batcher.
    pub max_batch: usize,
    /// Maximum time a request waits for batch-mates before the batcher
    /// flushes a partial batch, microseconds.
    pub max_delay_us: u64,
    /// Bound on the accepted-connection queue; connections beyond this are
    /// shed with `503` + `Retry-After` instead of queueing unboundedly.
    pub queue_limit: usize,
    /// Handler threads draining the connection queue.
    pub handler_threads: usize,
    /// Per-connection read timeout, milliseconds (slow or stalled clients
    /// get `408` instead of pinning a handler thread).
    pub request_timeout_ms: u64,
    /// Largest request body accepted, bytes (`413` beyond this).
    pub max_body_bytes: usize,
    /// Maximum variants kept resident; publishing or faulting in beyond
    /// this LRU-evicts the coldest variant's delta to the delta store.
    pub max_resident_variants: usize,
    /// Directory backing the delta checkpoint store (eviction target and
    /// fault-in source). `None` disables eviction.
    pub delta_store_dir: Option<String>,
    /// Tenant id answered by the un-suffixed endpoints (`/predict`,
    /// `/model`) and by the deprecated single-slot registry calls.
    pub default_tenant: String,
    /// Row-quantize published variants to int8 by default: dense-layer
    /// weights get per-channel symmetric scales at publish time and the
    /// serving forward runs the i32-accumulating int8 kernel. Off by
    /// default — quantization trades a bounded logit delta for throughput,
    /// and the determinism policy keeps every numerics change opt-in.
    pub quantize_int8: bool,
}

json_struct!(ServingConfig {
    max_batch,
    max_delay_us,
    queue_limit,
    handler_threads,
    request_timeout_ms,
    max_body_bytes,
    max_resident_variants,
    delta_store_dir,
    default_tenant,
    quantize_int8
});

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            max_batch: 8,
            max_delay_us: 2_000,
            queue_limit: 64,
            handler_threads: 4,
            request_timeout_ms: 2_000,
            max_body_bytes: 1 << 20,
            max_resident_variants: 64,
            delta_store_dir: None,
            default_tenant: "default".to_string(),
            quantize_int8: false,
        }
    }
}

/// Knobs for the live observability plane: metric recording for the
/// server's `/metrics` exposition, the health watchdog's sampling tick
/// and SLO thresholds, and the structured event log.
///
/// SLO thresholds follow the convention `0` = "not enforced": the
/// watchdog still samples and exposes its rolling windows, but never
/// flips `/healthz` to `degraded` on that signal. This keeps default
/// deployments (and the existing test matrix) healthy unless an operator
/// opts into a budget.
#[derive(Debug, Clone)]
pub struct ObservabilityConfig {
    /// Record counters/gauges/histograms while the server runs (powers
    /// `/metrics` and the `/stats` latency block). Metric recording is
    /// independent of span tracing, so this does not grow trace buffers.
    pub metrics: bool,
    /// Health-watchdog sampling period, milliseconds. `0` disables the
    /// watchdog thread entirely (`/healthz` then reports instantaneous
    /// component state only).
    pub watchdog_tick_ms: u64,
    /// Rolling-window length, in ticks, over which SLO signals are
    /// evaluated; health recovers after one clean window.
    pub watchdog_window: usize,
    /// Degrade when the micro-batcher queue depth exceeds this at any
    /// sampled tick in the window. `0` = not enforced.
    pub slo_queue_depth: usize,
    /// Degrade when the windowed p99 of `serve.batch_us` exceeds this,
    /// microseconds. `0` = not enforced.
    pub slo_batch_p99_us: u64,
    /// Degrade when more than this many requests were shed within the
    /// window. `0` = not enforced.
    pub slo_shed_per_window: u64,
    /// Structured event-log destination: a file path, or `stderr`/`-`
    /// for standard error. `None` leaves the log to the `NAUTILUS_LOG`
    /// environment variable.
    pub log: Option<String>,
    /// Minimum event level written to the log: `debug`, `info`, `warn`,
    /// or `error`.
    pub log_level: String,
}

json_struct!(ObservabilityConfig {
    metrics,
    watchdog_tick_ms,
    watchdog_window,
    slo_queue_depth,
    slo_batch_p99_us,
    slo_shed_per_window,
    log,
    log_level
});

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            metrics: true,
            watchdog_tick_ms: 100,
            watchdog_window: 10,
            slo_queue_depth: 0,
            slo_batch_p99_us: 0,
            slo_shed_per_window: 0,
            log: None,
            log_level: "info".to_string(),
        }
    }
}

/// Knobs for the distributed execution plane (`nautilus-dist`).
///
/// A coordinator shards the model-selection search (one shard per fused
/// training unit) across remote worker processes, assigns shards with
/// heartbeat-monitored leases, and retries failed or timed-out shards
/// with capped exponential backoff. All timing knobs affect only *when*
/// work runs — never its numerics: distributed selection output is
/// bit-identical to the single-box run at any worker count (see
/// DESIGN.md "Distributed execution plane").
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Lease length for one dispatched shard, milliseconds: a worker that
    /// neither answers nor fails within this window forfeits the shard,
    /// which is retried elsewhere (counted in `dist.lease_timeouts`).
    pub lease_timeout_ms: u64,
    /// Period between coordinator `/healthz` probes of idle-state workers,
    /// milliseconds. A worker that misses a probe is declared dead and its
    /// in-flight leases are reassigned.
    pub heartbeat_ms: u64,
    /// Maximum retry attempts per shard (beyond the first try) before the
    /// distributed run fails.
    pub max_shard_retries: u32,
    /// Base delay for shard retry backoff, milliseconds; attempt `k`
    /// waits `retry_backoff_ms * 2^k`, capped by `retry_backoff_cap_ms`.
    pub retry_backoff_ms: u64,
    /// Upper bound on the exponential retry backoff, milliseconds.
    pub retry_backoff_cap_ms: u64,
    /// TCP connect + health-probe timeout, milliseconds.
    pub connect_timeout_ms: u64,
    /// Largest request/response body a worker or coordinator accepts,
    /// bytes. Shard payloads carry datasets + materialized feature chunks,
    /// so this is far larger than the serving default.
    pub max_body_bytes: usize,
    /// Handler threads per worker process (health probes stay responsive
    /// while a shard trains).
    pub worker_threads: usize,
    /// Measure per-worker network bandwidth at coordinator start (echo
    /// micro-probe against `/work/probe`) and feed the measured
    /// bytes-over-wire term into MAT-OPT via
    /// `PlannerCosts::net_bytes_per_sec`. Off by default: the probe is
    /// always *run* and exported to telemetry, but only an explicit opt-in
    /// changes planner inputs — keeping distributed plans (and therefore
    /// selection output) bit-identical to the single-box run.
    pub calibrate_net: bool,
    /// Bytes echoed per network calibration probe.
    pub net_probe_bytes: u64,
}

json_struct!(DistConfig {
    lease_timeout_ms,
    heartbeat_ms,
    max_shard_retries,
    retry_backoff_ms,
    retry_backoff_cap_ms,
    connect_timeout_ms,
    max_body_bytes,
    worker_threads,
    calibrate_net,
    net_probe_bytes
});

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_timeout_ms: 60_000,
            heartbeat_ms: 500,
            max_shard_retries: 4,
            retry_backoff_ms: 100,
            retry_backoff_cap_ms: 5_000,
            connect_timeout_ms: 2_000,
            max_body_bytes: 256 << 20,
            worker_threads: 2,
            calibrate_net: false,
            net_probe_bytes: 1 << 20,
        }
    }
}

/// Full system configuration (paper §3: budgets, expected maximum records,
/// throughput values; all user-overridable).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Disk storage budget `Bdisk` for materialized layer outputs, bytes.
    pub disk_budget_bytes: u64,
    /// Runtime memory budget `Bmem` for fused-model training, bytes.
    pub memory_budget_bytes: u64,
    /// Expected maximum number of training records `r` (grown by
    /// exponential backoff when exceeded, §4.2.3).
    pub max_records: usize,
    /// Planner cost constants.
    pub planner: PlannerCosts,
    /// Simulated hardware. The real backend ignores the throughput knobs
    /// but sizes the feature store's page-cache model from
    /// `page_cache_bytes`.
    pub hardware: HardwareProfile,
    /// Workspace memory reserved for kernel scratch, bytes (§4.3.3 type 2).
    pub workspace_bytes: u64,
    /// Shuffle the training set each epoch (seeded by `(records, epoch)`,
    /// so every execution strategy sees the identical permutation and the
    /// logical-equivalence guarantee is preserved).
    pub shuffle_each_epoch: bool,
    /// MILP node budget per solve.
    pub milp_max_nodes: u64,
    /// MILP wall-clock budget per solve, seconds.
    pub milp_time_limit_secs: u64,
    /// Worker threads for the shared compute pool (`0` = decide from the
    /// host's available parallelism). `NAUTILUS_THREADS` overrides this,
    /// and the value only takes effect if set before the pool's first use.
    pub threads: usize,
    /// Chrome-trace output path. `Some(path)` enables the telemetry layer
    /// for the whole process and exports the trace there when the session
    /// drops. `NAUTILUS_TRACE` offers the same knob environmentally.
    pub trace: Option<String>,
    /// GEMM microkernel preference for the real backend: `"safe"` (the
    /// portable, bit-stable default) or `"fma"` (the explicit AVX2+FMA
    /// microkernel, used only when the host supports it). Applied
    /// process-wide when a session with a real backend is created;
    /// `NAUTILUS_GEMM_KERNEL` overrides it environmentally. See DESIGN.md
    /// "Determinism policy" for why FMA is opt-in.
    pub gemm_kernel: String,
    /// Online inference server knobs (queue bounds, micro-batching).
    pub serving: ServingConfig,
    /// Feature-store I/O pipeline knobs (prefetch, write-behind,
    /// calibration).
    pub io: IoConfig,
    /// Live observability knobs (`/metrics`, health watchdog SLOs,
    /// structured event log).
    pub observability: ObservabilityConfig,
    /// Distributed execution plane knobs (leases, retries, calibration).
    pub dist: DistConfig,
}

json_struct!(SystemConfig {
    disk_budget_bytes,
    memory_budget_bytes,
    max_records,
    planner,
    hardware,
    workspace_bytes,
    shuffle_each_epoch,
    milp_max_nodes,
    milp_time_limit_secs,
    threads,
    trace,
    gemm_kernel,
    serving,
    io,
    observability,
    dist
});

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            disk_budget_bytes: 25 * (1 << 30), // 25 GB, §5
            memory_budget_bytes: 10 * (1 << 30), // 10 GB, §5
            max_records: 10_000,
            planner: PlannerCosts::default(),
            hardware: HardwareProfile::default(),
            workspace_bytes: 1 << 30, // "e.g., 1GB", §4.3.3
            shuffle_each_epoch: true,
            milp_max_nodes: 50_000,
            milp_time_limit_secs: 30,
            threads: 0,
            trace: None,
            gemm_kernel: "safe".to_string(),
            serving: ServingConfig::default(),
            io: IoConfig::default(),
            observability: ObservabilityConfig::default(),
            dist: DistConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Starts a fluent builder seeded with the paper-scale defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: SystemConfig::default() }
    }

    /// A configuration scaled down for tiny real-backend runs: megabyte
    /// budgets, small `r`, negligible fixed overheads. A builder preset —
    /// refine it further with [`SystemConfig::into_builder`].
    pub fn tiny() -> Self {
        SystemConfig::builder()
            .disk_budget_bytes(64 << 20)
            .memory_budget_bytes(256 << 20)
            .max_records(256)
            .planner(PlannerCosts {
                disk_bytes_per_sec: 500e6,
                flops_per_sec: 5e9,
                net_bytes_per_sec: 0.0,
            })
            .hardware(HardwareProfile {
                achieved_flops_per_sec: 2e9,
                page_cache_bytes: 64 << 20,
                session_overhead_secs: 0.01,
                epoch_overhead_secs: 0.001,
                batch_overhead_secs: 0.0,
                ..HardwareProfile::default()
            })
            .workspace_bytes(8 << 20)
            .milp_max_nodes(20_000)
            .milp_time_limit_secs(10)
            .build()
    }

    /// Reopens this configuration as a builder for further overrides.
    pub fn into_builder(self) -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: self }
    }
}

/// Fluent builder for [`SystemConfig`]; obtained from
/// [`SystemConfig::builder`] (paper-scale defaults) or
/// [`SystemConfig::into_builder`] (refine a preset such as
/// [`SystemConfig::tiny`]).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Disk storage budget `Bdisk` for materialized layers, bytes.
    pub fn disk_budget_bytes(mut self, v: u64) -> Self {
        self.cfg.disk_budget_bytes = v;
        self
    }

    /// Runtime memory budget `Bmem` for fused training, bytes.
    pub fn memory_budget_bytes(mut self, v: u64) -> Self {
        self.cfg.memory_budget_bytes = v;
        self
    }

    /// Expected maximum number of training records `r`.
    pub fn max_records(mut self, v: usize) -> Self {
        self.cfg.max_records = v;
        self
    }

    /// Planner cost constants (optimizer's view of the hardware).
    pub fn planner(mut self, v: PlannerCosts) -> Self {
        self.cfg.planner = v;
        self
    }

    /// Overrides only the planner's compute-throughput assumption.
    pub fn planner_flops_per_sec(mut self, v: f64) -> Self {
        self.cfg.planner.flops_per_sec = v;
        self
    }

    /// Overrides only the planner's disk-throughput assumption.
    pub fn planner_disk_bytes_per_sec(mut self, v: f64) -> Self {
        self.cfg.planner.disk_bytes_per_sec = v;
        self
    }

    /// Simulated hardware profile.
    pub fn hardware(mut self, v: HardwareProfile) -> Self {
        self.cfg.hardware = v;
        self
    }

    /// Workspace memory reserved for kernel scratch, bytes.
    pub fn workspace_bytes(mut self, v: u64) -> Self {
        self.cfg.workspace_bytes = v;
        self
    }

    /// Shuffle the training set each epoch.
    pub fn shuffle_each_epoch(mut self, v: bool) -> Self {
        self.cfg.shuffle_each_epoch = v;
        self
    }

    /// MILP node budget per solve.
    pub fn milp_max_nodes(mut self, v: u64) -> Self {
        self.cfg.milp_max_nodes = v;
        self
    }

    /// MILP wall-clock budget per solve, seconds.
    pub fn milp_time_limit_secs(mut self, v: u64) -> Self {
        self.cfg.milp_time_limit_secs = v;
        self
    }

    /// Worker threads for the shared compute pool (`0` = auto).
    pub fn threads(mut self, v: usize) -> Self {
        self.cfg.threads = v;
        self
    }

    /// Enables telemetry and writes the Chrome trace to `path` when the
    /// session drops (equivalent to setting `NAUTILUS_TRACE=path`).
    pub fn trace(mut self, path: impl Into<String>) -> Self {
        self.cfg.trace = Some(path.into());
        self
    }

    /// Replaces the whole serving configuration.
    pub fn serving(mut self, v: ServingConfig) -> Self {
        self.cfg.serving = v;
        self
    }

    /// Maximum records fused into one serving forward pass.
    pub fn serve_max_batch(mut self, v: usize) -> Self {
        self.cfg.serving.max_batch = v;
        self
    }

    /// Maximum micro-batcher wait for batch-mates, microseconds.
    pub fn serve_max_delay_us(mut self, v: u64) -> Self {
        self.cfg.serving.max_delay_us = v;
        self
    }

    /// Bound on the server's accepted-connection queue.
    pub fn serve_queue_limit(mut self, v: usize) -> Self {
        self.cfg.serving.queue_limit = v;
        self
    }

    /// Handler threads draining the server's connection queue.
    pub fn serve_handler_threads(mut self, v: usize) -> Self {
        self.cfg.serving.handler_threads = v;
        self
    }

    /// Per-connection read timeout, milliseconds.
    pub fn serve_request_timeout_ms(mut self, v: u64) -> Self {
        self.cfg.serving.request_timeout_ms = v;
        self
    }

    /// Largest request body accepted by the server, bytes.
    pub fn serve_max_body_bytes(mut self, v: usize) -> Self {
        self.cfg.serving.max_body_bytes = v;
        self
    }

    /// Maximum model variants kept resident before LRU delta eviction.
    pub fn serve_max_resident_variants(mut self, v: usize) -> Self {
        self.cfg.serving.max_resident_variants = v;
        self
    }

    /// Directory backing the delta checkpoint store (enables eviction).
    pub fn serve_delta_store_dir(mut self, path: impl Into<String>) -> Self {
        self.cfg.serving.delta_store_dir = Some(path.into());
        self
    }

    /// Tenant id served by the un-suffixed `/predict` and `/model` routes.
    pub fn serve_default_tenant(mut self, id: impl Into<String>) -> Self {
        self.cfg.serving.default_tenant = id.into();
        self
    }

    /// Row-quantize published variants to int8 for serving by default.
    pub fn serve_quantize_int8(mut self, v: bool) -> Self {
        self.cfg.serving.quantize_int8 = v;
        self
    }

    /// GEMM microkernel preference: `"safe"` (default) or `"fma"`.
    pub fn gemm_kernel(mut self, v: impl Into<String>) -> Self {
        self.cfg.gemm_kernel = v.into();
        self
    }

    /// Replaces the whole feature-store I/O configuration.
    pub fn io(mut self, v: IoConfig) -> Self {
        self.cfg.io = v;
        self
    }

    /// Overlap feature reads with training compute.
    pub fn io_prefetch(mut self, v: bool) -> Self {
        self.cfg.io.prefetch = v;
        self
    }

    /// Dedicated I/O threads per prefetcher / write-behind engine.
    pub fn io_threads(mut self, v: usize) -> Self {
        self.cfg.io.io_threads = v;
        self
    }

    /// Defer materialization chunk writes to I/O threads.
    pub fn io_write_behind(mut self, v: bool) -> Self {
        self.cfg.io.write_behind = v;
        self
    }

    /// Measure disk bandwidth at session start and feed it to MAT-OPT.
    pub fn io_calibrate(mut self, v: bool) -> Self {
        self.cfg.io.calibrate = v;
        self
    }

    /// Bytes transferred per calibration measurement.
    pub fn io_calibrate_probe_bytes(mut self, v: u64) -> Self {
        self.cfg.io.calibrate_probe_bytes = v;
        self
    }

    /// Failure-injection: artificial per-chunk fetch delay, milliseconds.
    pub fn io_read_delay_ms(mut self, v: u64) -> Self {
        self.cfg.io.read_delay_ms = v;
        self
    }

    /// Replaces the whole observability configuration.
    pub fn observability(mut self, v: ObservabilityConfig) -> Self {
        self.cfg.observability = v;
        self
    }

    /// Record live metrics while the server runs (powers `/metrics`).
    pub fn obs_metrics(mut self, v: bool) -> Self {
        self.cfg.observability.metrics = v;
        self
    }

    /// Health-watchdog sampling period, milliseconds (`0` disables).
    pub fn obs_watchdog_tick_ms(mut self, v: u64) -> Self {
        self.cfg.observability.watchdog_tick_ms = v;
        self
    }

    /// Rolling-window length, in watchdog ticks.
    pub fn obs_watchdog_window(mut self, v: usize) -> Self {
        self.cfg.observability.watchdog_window = v;
        self
    }

    /// SLO: maximum tolerated micro-batcher queue depth (`0` = off).
    pub fn obs_slo_queue_depth(mut self, v: usize) -> Self {
        self.cfg.observability.slo_queue_depth = v;
        self
    }

    /// SLO: maximum tolerated windowed batch-latency p99, µs (`0` = off).
    pub fn obs_slo_batch_p99_us(mut self, v: u64) -> Self {
        self.cfg.observability.slo_batch_p99_us = v;
        self
    }

    /// SLO: maximum tolerated shed requests per window (`0` = off).
    pub fn obs_slo_shed_per_window(mut self, v: u64) -> Self {
        self.cfg.observability.slo_shed_per_window = v;
        self
    }

    /// Structured event-log destination (path, or `stderr`/`-`).
    pub fn obs_log(mut self, dest: impl Into<String>) -> Self {
        self.cfg.observability.log = Some(dest.into());
        self
    }

    /// Minimum event level written to the log.
    pub fn obs_log_level(mut self, level: impl Into<String>) -> Self {
        self.cfg.observability.log_level = level.into();
        self
    }

    /// Replaces the whole distributed-execution configuration.
    pub fn dist(mut self, v: DistConfig) -> Self {
        self.cfg.dist = v;
        self
    }

    /// Lease length for one dispatched shard, milliseconds.
    pub fn dist_lease_timeout_ms(mut self, v: u64) -> Self {
        self.cfg.dist.lease_timeout_ms = v;
        self
    }

    /// Coordinator heartbeat probe period, milliseconds.
    pub fn dist_heartbeat_ms(mut self, v: u64) -> Self {
        self.cfg.dist.heartbeat_ms = v;
        self
    }

    /// Maximum retry attempts per shard beyond the first try.
    pub fn dist_max_shard_retries(mut self, v: u32) -> Self {
        self.cfg.dist.max_shard_retries = v;
        self
    }

    /// Base delay for shard retry backoff, milliseconds.
    pub fn dist_retry_backoff_ms(mut self, v: u64) -> Self {
        self.cfg.dist.retry_backoff_ms = v;
        self
    }

    /// Upper bound on the exponential retry backoff, milliseconds.
    pub fn dist_retry_backoff_cap_ms(mut self, v: u64) -> Self {
        self.cfg.dist.retry_backoff_cap_ms = v;
        self
    }

    /// TCP connect + health-probe timeout, milliseconds.
    pub fn dist_connect_timeout_ms(mut self, v: u64) -> Self {
        self.cfg.dist.connect_timeout_ms = v;
        self
    }

    /// Largest shard request/response body, bytes.
    pub fn dist_max_body_bytes(mut self, v: usize) -> Self {
        self.cfg.dist.max_body_bytes = v;
        self
    }

    /// Handler threads per worker process.
    pub fn dist_worker_threads(mut self, v: usize) -> Self {
        self.cfg.dist.worker_threads = v;
        self
    }

    /// Feed the measured network bandwidth into MAT-OPT (changes planner
    /// inputs — distributed plans then diverge from single-box plans).
    pub fn dist_calibrate_net(mut self, v: bool) -> Self {
        self.cfg.dist.calibrate_net = v;
        self
    }

    /// Bytes echoed per network calibration probe.
    pub fn dist_net_probe_bytes(mut self, v: u64) -> Self {
        self.cfg.dist.net_probe_bytes = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_cost_matches_paper_formula() {
        let p = PlannerCosts::default();
        // 500 MB at 500 MB/s = 1 s = 6 TFLOP of missed compute.
        let c = p.load_cost_flops(500_000_000);
        assert!((c - 6e12).abs() / 6e12 < 1e-9);
    }

    #[test]
    fn defaults_match_paper_budgets() {
        let c = SystemConfig::default();
        assert_eq!(c.disk_budget_bytes, 25 * 1024 * 1024 * 1024);
        assert_eq!(c.memory_budget_bytes, 10 * 1024 * 1024 * 1024);
        assert_eq!(c.max_records, 10_000);
    }

    #[test]
    fn builder_defaults_match_default_config() {
        let built = SystemConfig::builder().build();
        let def = SystemConfig::default();
        assert_eq!(built.disk_budget_bytes, def.disk_budget_bytes);
        assert_eq!(built.memory_budget_bytes, def.memory_budget_bytes);
        assert_eq!(built.max_records, def.max_records);
        assert_eq!(built.threads, def.threads);
    }

    #[test]
    fn builder_setters_override_each_knob() {
        let cfg = SystemConfig::builder()
            .disk_budget_bytes(123)
            .memory_budget_bytes(456)
            .max_records(7)
            .planner(PlannerCosts {
                disk_bytes_per_sec: 1.0,
                flops_per_sec: 2.0,
                net_bytes_per_sec: 0.0,
            })
            .hardware(HardwareProfile { page_cache_bytes: 99, ..HardwareProfile::default() })
            .workspace_bytes(8)
            .shuffle_each_epoch(false)
            .milp_max_nodes(9)
            .milp_time_limit_secs(10)
            .threads(4)
            .trace("/tmp/trace.json")
            .build();
        assert_eq!(cfg.disk_budget_bytes, 123);
        assert_eq!(cfg.memory_budget_bytes, 456);
        assert_eq!(cfg.max_records, 7);
        assert_eq!(cfg.planner.flops_per_sec, 2.0);
        assert_eq!(cfg.hardware.page_cache_bytes, 99);
        assert_eq!(cfg.workspace_bytes, 8);
        assert!(!cfg.shuffle_each_epoch);
        assert_eq!(cfg.milp_max_nodes, 9);
        assert_eq!(cfg.milp_time_limit_secs, 10);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.trace.as_deref(), Some("/tmp/trace.json"));
    }

    #[test]
    fn tiny_preset_reopens_as_builder() {
        let cfg = SystemConfig::tiny().into_builder().threads(2).build();
        assert_eq!(cfg.disk_budget_bytes, 64 << 20);
        assert_eq!(cfg.max_records, 256);
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    fn serving_knobs_build_and_round_trip() {
        use nautilus_util::json::{FromJson, ToJson};
        let cfg = SystemConfig::builder()
            .serve_max_batch(16)
            .serve_max_delay_us(500)
            .serve_queue_limit(3)
            .serve_handler_threads(2)
            .serve_request_timeout_ms(250)
            .serve_max_body_bytes(4096)
            .serve_max_resident_variants(12)
            .serve_delta_store_dir("/tmp/deltas")
            .serve_default_tenant("acme")
            .build();
        assert_eq!(cfg.serving.max_batch, 16);
        assert_eq!(cfg.serving.max_delay_us, 500);
        assert_eq!(cfg.serving.queue_limit, 3);
        assert_eq!(cfg.serving.handler_threads, 2);
        assert_eq!(cfg.serving.request_timeout_ms, 250);
        assert_eq!(cfg.serving.max_body_bytes, 4096);
        assert_eq!(cfg.serving.max_resident_variants, 12);
        assert_eq!(cfg.serving.delta_store_dir.as_deref(), Some("/tmp/deltas"));
        assert_eq!(cfg.serving.default_tenant, "acme");

        let bytes = nautilus_util::json::to_vec(&cfg.serving.to_json());
        let back = ServingConfig::from_json(&nautilus_util::json::from_slice(&bytes).unwrap())
            .expect("serving config round-trips through json");
        assert_eq!(back.max_batch, 16);
        assert_eq!(back.queue_limit, 3);
        assert_eq!(back.max_body_bytes, 4096);
        assert_eq!(back.max_resident_variants, 12);
        assert_eq!(back.delta_store_dir.as_deref(), Some("/tmp/deltas"));
        assert_eq!(back.default_tenant, "acme");
    }

    #[test]
    fn io_knobs_build_and_round_trip() {
        use nautilus_util::json::{FromJson, ToJson};
        let cfg = SystemConfig::builder()
            .io_prefetch(false)
            .io_threads(5)
            .io_write_behind(false)
            .io_calibrate(true)
            .io_calibrate_probe_bytes(1 << 20)
            .io_read_delay_ms(7)
            .build();
        assert!(!cfg.io.prefetch);
        assert_eq!(cfg.io.io_threads, 5);
        assert!(!cfg.io.write_behind);
        assert!(cfg.io.calibrate);
        assert_eq!(cfg.io.calibrate_probe_bytes, 1 << 20);
        assert_eq!(cfg.io.read_delay_ms, 7);

        let bytes = nautilus_util::json::to_vec(&cfg.io.to_json());
        let back = IoConfig::from_json(&nautilus_util::json::from_slice(&bytes).unwrap())
            .expect("io config round-trips through json");
        assert!(!back.prefetch && back.calibrate);
        assert_eq!(back.io_threads, 5);
        assert_eq!(back.read_delay_ms, 7);
    }

    #[test]
    fn observability_knobs_build_and_round_trip() {
        use nautilus_util::json::{FromJson, ToJson};
        let cfg = SystemConfig::builder()
            .obs_metrics(false)
            .obs_watchdog_tick_ms(25)
            .obs_watchdog_window(6)
            .obs_slo_queue_depth(4)
            .obs_slo_batch_p99_us(50_000)
            .obs_slo_shed_per_window(2)
            .obs_log("/tmp/events.jsonl")
            .obs_log_level("warn")
            .build();
        assert!(!cfg.observability.metrics);
        assert_eq!(cfg.observability.watchdog_tick_ms, 25);
        assert_eq!(cfg.observability.watchdog_window, 6);
        assert_eq!(cfg.observability.slo_queue_depth, 4);
        assert_eq!(cfg.observability.slo_batch_p99_us, 50_000);
        assert_eq!(cfg.observability.slo_shed_per_window, 2);
        assert_eq!(cfg.observability.log.as_deref(), Some("/tmp/events.jsonl"));
        assert_eq!(cfg.observability.log_level, "warn");

        let bytes = nautilus_util::json::to_vec(&cfg.observability.to_json());
        let back =
            ObservabilityConfig::from_json(&nautilus_util::json::from_slice(&bytes).unwrap())
                .expect("observability config round-trips through json");
        assert!(!back.metrics);
        assert_eq!(back.watchdog_tick_ms, 25);
        assert_eq!(back.slo_queue_depth, 4);
        assert_eq!(back.log.as_deref(), Some("/tmp/events.jsonl"));
    }

    #[test]
    fn observability_defaults_record_metrics_but_enforce_no_slos() {
        let o = ObservabilityConfig::default();
        assert!(o.metrics, "metrics power /metrics and must default on");
        assert!(o.watchdog_tick_ms > 0 && o.watchdog_window > 0);
        assert_eq!(
            (o.slo_queue_depth, o.slo_batch_p99_us, o.slo_shed_per_window),
            (0, 0, 0),
            "SLO budgets are opt-in: default deployments never self-degrade"
        );
    }

    #[test]
    fn io_defaults_enable_async_pipeline_but_not_calibration() {
        let io = IoConfig::default();
        assert!(io.prefetch && io.write_behind);
        assert!(io.io_threads >= 1);
        assert!(!io.calibrate, "calibration is opt-in (it touches the disk at startup)");
    }

    #[test]
    fn dist_knobs_build_and_round_trip() {
        use nautilus_util::json::{FromJson, ToJson};
        let cfg = SystemConfig::builder()
            .dist_lease_timeout_ms(1234)
            .dist_heartbeat_ms(50)
            .dist_max_shard_retries(2)
            .dist_retry_backoff_ms(10)
            .dist_retry_backoff_cap_ms(100)
            .dist_connect_timeout_ms(500)
            .dist_max_body_bytes(1 << 20)
            .dist_worker_threads(3)
            .dist_calibrate_net(true)
            .dist_net_probe_bytes(4096)
            .build();
        assert_eq!(cfg.dist.lease_timeout_ms, 1234);
        assert_eq!(cfg.dist.heartbeat_ms, 50);
        assert_eq!(cfg.dist.max_shard_retries, 2);
        assert_eq!(cfg.dist.retry_backoff_ms, 10);
        assert_eq!(cfg.dist.retry_backoff_cap_ms, 100);
        assert_eq!(cfg.dist.connect_timeout_ms, 500);
        assert_eq!(cfg.dist.max_body_bytes, 1 << 20);
        assert_eq!(cfg.dist.worker_threads, 3);
        assert!(cfg.dist.calibrate_net);
        assert_eq!(cfg.dist.net_probe_bytes, 4096);

        let bytes = nautilus_util::json::to_vec(&cfg.dist.to_json());
        let back = DistConfig::from_json(&nautilus_util::json::from_slice(&bytes).unwrap())
            .expect("dist config round-trips through json");
        assert_eq!(back.lease_timeout_ms, 1234);
        assert_eq!(back.max_shard_retries, 2);
        assert!(back.calibrate_net);
    }

    #[test]
    fn net_term_is_off_by_default_and_adds_serial_transfer_leg() {
        let p = PlannerCosts::default();
        assert_eq!(p.net_bytes_per_sec, 0.0, "single-box: no wire term");
        let base = p.load_cost_flops(500_000_000);
        let with_net = PlannerCosts { net_bytes_per_sec: 500e6, ..p };
        // Equal disk and net bandwidth → the load leg exactly doubles.
        let c = with_net.load_cost_flops(500_000_000);
        assert!((c - 2.0 * base).abs() / c < 1e-12);
        assert!(!DistConfig::default().calibrate_net, "net calibration is opt-in");
    }

    #[test]
    fn sim_hardware_is_slower_than_planner_assumption() {
        let c = SystemConfig::default();
        assert!(c.hardware.achieved_flops_per_sec < c.planner.flops_per_sec);
        assert!(c.hardware.dram_bytes_per_sec > c.planner.disk_bytes_per_sec);
    }
}
