//! Workload specification: candidate models, training hyperparameters, and
//! the grid-search API.
//!
//! Mirrors the paper's API (§3): the user supplies a parameter search space
//! plus a model-initialization function that maps one assignment `φᵢ` to a
//! ready-to-train model; Nautilus enumerates the grid once at workload
//! initialization and keeps the candidate set fixed across cycles (§2.5).

use nautilus_dnn::{ModelGraph, OptimizerSpec, TaskKind};
use nautilus_util::json_struct;
use std::collections::BTreeMap;
use std::fmt;

/// A value in a search grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric parameter (learning rate, epochs, batch size, ...).
    Num(f64),
    /// Symbolic parameter (feature strategy, freezing scheme, ...).
    Str(String),
}

impl ParamValue {
    /// Numeric value, panicking when symbolic (init-function convenience).
    pub fn as_num(&self) -> f64 {
        match self {
            ParamValue::Num(x) => *x,
            ParamValue::Str(s) => panic!("parameter '{s}' is not numeric"),
        }
    }

    /// Symbolic value, panicking when numeric.
    pub fn as_str(&self) -> &str {
        match self {
            ParamValue::Str(s) => s,
            ParamValue::Num(x) => panic!("parameter '{x}' is not symbolic"),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Num(x) => write!(f, "{x}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One full assignment of grid parameters.
pub type ParamAssignment = BTreeMap<String, ParamValue>;

/// A grid search space: the cross product of per-parameter value lists.
#[derive(Debug, Clone, Default)]
pub struct SearchGrid {
    dims: Vec<(String, Vec<ParamValue>)>,
}

impl SearchGrid {
    /// An empty grid (a single empty assignment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric dimension.
    pub fn with_nums(mut self, name: impl Into<String>, values: &[f64]) -> Self {
        self.dims.push((name.into(), values.iter().map(|&v| ParamValue::Num(v)).collect()));
        self
    }

    /// Adds a symbolic dimension.
    pub fn with_strs(mut self, name: impl Into<String>, values: &[&str]) -> Self {
        self.dims.push((
            name.into(),
            values.iter().map(|s| ParamValue::Str((*s).to_string())).collect(),
        ));
        self
    }

    /// Number of assignments in the cross product.
    pub fn len(&self) -> usize {
        self.dims.iter().map(|(_, v)| v.len()).product()
    }

    /// True when the grid has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Enumerates every assignment in deterministic (row-major) order.
    pub fn assignments(&self) -> Vec<ParamAssignment> {
        let mut out = vec![ParamAssignment::new()];
        for (name, values) in &self.dims {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for base in &out {
                for v in values {
                    let mut a = base.clone();
                    a.insert(name.clone(), v.clone());
                    next.push(a);
                }
            }
            out = next;
        }
        out
    }
}

/// Training hyperparameters `φ` of one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyper {
    /// Mini-batch size (fusion requires equality, §4.3.1).
    pub batch_size: usize,
    /// Number of training epochs per cycle.
    pub epochs: usize,
    /// Optimizer configuration (carries the learning rate).
    pub optimizer: OptimizerSpec,
}

// Wire form for the distributed plane (learning-rate floats round-trip
// exactly: Rust's f64 Display prints shortest-roundtrip decimals).
json_struct!(Hyper { batch_size, epochs, optimizer });

/// One candidate model `(Mᵢ, φᵢ)` produced by the model-init function.
#[derive(Debug, Clone)]
pub struct CandidateModel {
    /// Human-readable name (unique within the workload).
    pub name: String,
    /// The adapted model graph with its freezing scheme applied.
    pub graph: ModelGraph,
    /// Training hyperparameters.
    pub hyper: Hyper,
    /// Task head semantics (loss/accuracy computation).
    pub task: TaskKind,
}

/// The model-initialization function type: interprets one grid assignment
/// (paper §3, "encapsulates the logic to interpret the search parameter
/// values").
pub type ModelInitFn = dyn Fn(&ParamAssignment) -> Result<CandidateModel, String>;

fn check_unique_names(out: &[CandidateModel]) -> Result<(), String> {
    let mut names: Vec<&str> = out.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != out.len() {
        return Err("candidate names must be unique".to_string());
    }
    Ok(())
}

/// Expands a grid through an init function into the candidate set `Q`.
pub fn expand_grid(
    grid: &SearchGrid,
    init: &ModelInitFn,
) -> Result<Vec<CandidateModel>, String> {
    let mut out = Vec::with_capacity(grid.len());
    for a in grid.assignments() {
        out.push(init(&a)?);
    }
    check_unique_names(&out)?;
    Ok(out)
}

/// Random search over the same space (the paper's other supported model
/// selection procedure): samples `n` distinct assignments from the grid's
/// cross product, uniformly without replacement, with a fixed seed so the
/// workload specification stays fixed across cycles (§2.5).
pub fn expand_random(
    grid: &SearchGrid,
    n: usize,
    seed: u64,
    init: &ModelInitFn,
) -> Result<Vec<CandidateModel>, String> {
    use nautilus_util::rng::SliceRandom;
    let mut all = grid.assignments();
    let mut rng = nautilus_tensor::init::seeded_rng(seed);
    all.shuffle(&mut rng);
    all.truncate(n);
    let mut out = Vec::with_capacity(all.len());
    for a in &all {
        out.push(init(a)?);
    }
    check_unique_names(&out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_tensor::init::seeded_rng;

    #[test]
    fn grid_cross_product_order() {
        let g = SearchGrid::new()
            .with_nums("lr", &[0.1, 0.2])
            .with_strs("strategy", &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        let a = g.assignments();
        assert_eq!(a.len(), 6);
        assert_eq!(a[0]["lr"].as_num(), 0.1);
        assert_eq!(a[0]["strategy"].as_str(), "a");
        assert_eq!(a[5]["lr"].as_num(), 0.2);
        assert_eq!(a[5]["strategy"].as_str(), "c");
    }

    #[test]
    fn empty_grid_has_one_assignment() {
        let g = SearchGrid::new();
        assert_eq!(g.assignments().len(), 1);
        assert_eq!(g.len(), 1);
    }

    fn dummy_candidate(name: &str) -> CandidateModel {
        let mut rng = seeded_rng(1);
        let mut g = ModelGraph::new();
        let i = g.add_input("in", [2]);
        let o = g
            .add_layer(
                "out",
                LayerKind::Dense { in_dim: 2, out_dim: 2, act: Activation::None },
                &[i],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        CandidateModel {
            name: name.to_string(),
            graph: g,
            hyper: Hyper { batch_size: 4, epochs: 1, optimizer: OptimizerSpec::sgd(0.1) },
            task: TaskKind::Classification,
        }
    }

    #[test]
    fn expand_grid_builds_candidates() {
        let g = SearchGrid::new().with_nums("lr", &[0.1, 0.2]);
        let cands = expand_grid(&g, &|a| Ok(dummy_candidate(&format!("m-{}", a["lr"]))))
            .unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].name, "m-0.1");
    }

    #[test]
    fn expand_grid_rejects_duplicate_names() {
        let g = SearchGrid::new().with_nums("lr", &[0.1, 0.2]);
        let r = expand_grid(&g, &|_| Ok(dummy_candidate("same")));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "not numeric")]
    fn param_value_type_mismatch_panics() {
        ParamValue::Str("x".into()).as_num();
    }

    #[test]
    fn random_search_samples_without_replacement() {
        let g = SearchGrid::new()
            .with_nums("lr", &[0.1, 0.2, 0.3])
            .with_nums("batch", &[4.0, 8.0]);
        let cands = expand_random(&g, 4, 7, &|a| {
            Ok(dummy_candidate(&format!("m-{}-{}", a["lr"], a["batch"])))
        })
        .unwrap();
        assert_eq!(cands.len(), 4);
        let mut names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "sampling must be without replacement");
        // Deterministic per seed.
        let again = expand_random(&g, 4, 7, &|a| {
            Ok(dummy_candidate(&format!("m-{}-{}", a["lr"], a["batch"])))
        })
        .unwrap();
        assert_eq!(
            cands.iter().map(|c| &c.name).collect::<Vec<_>>(),
            again.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_search_caps_at_grid_size() {
        let g = SearchGrid::new().with_nums("lr", &[0.1, 0.2]);
        let cands =
            expand_random(&g, 10, 1, &|a| Ok(dummy_candidate(&format!("m-{}", a["lr"]))))
                .unwrap();
        assert_eq!(cands.len(), 2);
    }
}
