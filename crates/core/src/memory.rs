//! Peak training-memory estimation (paper §4.3.3, Fig 5).
//!
//! The estimator covers the paper's three dominant usage types: (1)
//! parameter tensors of the plan's present layers, (2) a configured
//! workspace allowance, and (3) activations retained for back-propagation,
//! bounded by a topological live-tensor analysis over the plan augmented
//! with backward nodes:
//!
//! * every present node contributes a forward tensor, sized by the
//!   composite `smem` rule (all internal activations for blocks);
//! * every gradient-carrying node gets a backward node consuming its own
//!   forward output, its parents' outputs, and its children's backward
//!   outputs, and producing a gradient tensor of the same `smem`;
//! * a loss barrier sits between the forward and backward phases, so any
//!   topological order gives the same bound up to one tensor (§4.3.3's
//!   argument).
//!
//! Frozen/loaded layers retain nothing: their internals spike only while
//! the layer itself executes.

use crate::mat_opt::NodeAction;
use crate::multimodel::{MNodeId, MultiModelGraph};
use std::collections::BTreeMap;

/// Breakdown of an estimated peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Parameter bytes of present layers.
    pub params_bytes: u64,
    /// Optimizer-state + parameter-gradient bytes (trainable layers only).
    pub optimizer_bytes: u64,
    /// Peak live activation bytes at the given batch size.
    pub activation_bytes: u64,
    /// Configured workspace allowance.
    pub workspace_bytes: u64,
}

impl MemoryEstimate {
    /// Total estimated peak.
    pub fn total(&self) -> u64 {
        self.params_bytes + self.optimizer_bytes + self.activation_bytes + self.workspace_bytes
    }
}

/// Estimates the peak training memory of a reuse plan at `batch_size`.
///
/// `optimizer_state_factor` is the per-trainable-parameter state multiple
/// (1 for SGD+momentum, 2 for Adam) on top of one gradient copy.
pub fn estimate_peak_memory(
    multi: &MultiModelGraph,
    actions: &BTreeMap<MNodeId, NodeAction>,
    batch_size: usize,
    workspace_bytes: u64,
    optimizer_state_factor: f64,
) -> MemoryEstimate {
    // Present nodes in topological order (MNodeIds are topo-ordered).
    let present: Vec<MNodeId> = actions
        .iter()
        .filter(|(_, &a)| a != NodeAction::Pruned)
        .map(|(&m, _)| m)
        .collect();
    let pos_of: BTreeMap<MNodeId, usize> =
        present.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let n = present.len();

    // Plan-level gradient-need analysis: gradients flow into a node iff it
    // is computed-and-trainable, or a computed descendant of such a node...
    // equivalently (walking forward): trainable itself, or has a present,
    // computed parent that requires grad.
    let mut needs_grad: BTreeMap<MNodeId, bool> = BTreeMap::new();
    let mut params_bytes = 0u64;
    let mut trainable_param_bytes = 0u64;
    for &m in &present {
        let node = multi.node(m);
        let computed = actions[&m] == NodeAction::Computed;
        if computed {
            params_bytes += node.profile.param_bytes;
        }
        let trainable = computed && node.profile.trainable;
        if trainable {
            trainable_param_bytes += node.profile.param_bytes;
        }
        let from_parents = computed
            && node
                .parents
                .iter()
                .any(|p| needs_grad.get(p).copied().unwrap_or(false));
        needs_grad.insert(m, trainable || from_parents);
    }

    // Schedule positions: forward 0..n-1, loss at n, backward nodes at
    // n+1.. in reverse topological order.
    let bwd_pos = |i: usize| n + 1 + (n - 1 - i);
    let children = multi.children();

    // For each forward tensor: birth at its position, death at its last
    // consumer; retained bytes differ for grad vs non-grad nodes.
    let mut births: Vec<Vec<u64>> = vec![Vec::new(); 2 * n + 2];
    let mut deaths: Vec<Vec<u64>> = vec![Vec::new(); 2 * n + 3];
    let mut transient: Vec<u64> = vec![0; 2 * n + 2];

    for (i, &m) in present.iter().enumerate() {
        let node = multi.node(m);
        let grad = needs_grad[&m];
        let retained = if grad { node.profile.internal_bytes } else { node.profile.out_bytes };
        // Transient spike while this node itself executes (composite
        // internals that are not retained).
        transient[i] += node.profile.internal_bytes.saturating_sub(retained);

        let mut last = i;
        for c in &children[m.index()] {
            if let Some(&cp) = pos_of.get(c) {
                if actions[c] == NodeAction::Computed {
                    last = last.max(cp);
                    if needs_grad[c] {
                        last = last.max(bwd_pos(cp));
                    }
                }
            }
        }
        if grad {
            last = last.max(bwd_pos(i));
        }
        // Member outputs feed the loss barrier.
        let is_output = multi
            .mappings
            .iter()
            .any(|map| map.outputs.contains(&m));
        if is_output {
            last = last.max(n);
            // ... and their backward nodes are seeded by the loss.
            if grad {
                last = last.max(bwd_pos(i));
            }
        }
        births[i].push(retained);
        deaths[last + 1].push(retained);

        // Gradient tensor produced by this node's backward, consumed by the
        // parents' backward nodes.
        if grad {
            let gbytes = node.profile.internal_bytes;
            let gpos = bwd_pos(i);
            let mut glast = gpos;
            for p in &node.parents {
                if let Some(&pp) = pos_of.get(p) {
                    if needs_grad.get(p).copied().unwrap_or(false) {
                        glast = glast.max(bwd_pos(pp));
                    }
                }
            }
            births[gpos].push(gbytes);
            deaths[glast + 1].push(gbytes);
        }
    }

    let mut live = 0u64;
    let mut peak = 0u64;
    for t in 0..2 * n + 2 {
        for &d in &deaths[t] {
            live = live.saturating_sub(d);
        }
        for &b in &births[t] {
            live += b;
        }
        peak = peak.max(live + transient[t]);
    }

    let activation_bytes = peak * batch_size as u64;
    let optimizer_bytes =
        (trainable_param_bytes as f64 * (1.0 + optimizer_state_factor)).ceil() as u64;
    MemoryEstimate { params_bytes, optimizer_bytes, activation_bytes, workspace_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat_opt::{no_reuse_plan, plan_given_v};
    use crate::multimodel::MultiModelGraph;
    use crate::spec::{CandidateModel, Hyper};
    use crate::SystemConfig;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;
    use std::collections::BTreeSet;

    fn candidate(strategy: FeatureStrategy, lr: f32) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: format!("{}-{lr}", strategy.label()),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 5, optimizer: OptimizerSpec::adam(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    #[test]
    fn memory_scales_with_batch_size() {
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let plan = no_reuse_plan(&multi, &[0], &SystemConfig::tiny());
        let m8 = estimate_peak_memory(&multi, &plan.actions, 8, 0, 2.0);
        let m32 = estimate_peak_memory(&multi, &plan.actions, 32, 0, 2.0);
        assert_eq!(m8.params_bytes, m32.params_bytes);
        assert_eq!(m32.activation_bytes, 4 * m8.activation_bytes);
        assert!(m32.total() > m8.total());
    }

    #[test]
    fn loading_features_reduces_params_and_activations() {
        let cfg = SystemConfig::tiny();
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let full = no_reuse_plan(&multi, &[0], &cfg);
        // Materialize the whole frontier; plan with a slow planner so it
        // prefers loading.
        let mut slow = cfg.clone();
        slow.planner.flops_per_sec = 1e9;
        let v: BTreeSet<_> = multi.mat_candidates().into_iter().collect();
        let lean = plan_given_v(&multi, &[0], &v, &slow);
        let mf = estimate_peak_memory(&multi, &full.actions, 8, 0, 2.0);
        let ml = estimate_peak_memory(&multi, &lean.actions, 8, 0, 2.0);
        assert!(ml.params_bytes < mf.params_bytes);
        assert!(ml.activation_bytes <= mf.activation_bytes);
        assert!(ml.total() < mf.total());
    }

    #[test]
    fn fused_pair_needs_more_memory_than_single() {
        let cfg = SystemConfig::tiny();
        let cands = vec![
            candidate(FeatureStrategy::LastHidden, 0.01),
            candidate(FeatureStrategy::LastHidden, 0.02),
        ];
        let multi = MultiModelGraph::build(&cands);
        let v = BTreeSet::new();
        let solo = plan_given_v(&multi, &[0], &v, &cfg);
        let pair = plan_given_v(&multi, &[0, 1], &v, &cfg);
        let ms = estimate_peak_memory(&multi, &solo.actions, 8, 0, 2.0);
        let mp = estimate_peak_memory(&multi, &pair.actions, 8, 0, 2.0);
        assert!(mp.total() > ms.total());
        // But less than 2x: the frozen trunk is shared and not retained.
        assert!(mp.total() < 2 * ms.total());
    }

    #[test]
    fn workspace_and_optimizer_terms_add_up() {
        let cands = vec![candidate(FeatureStrategy::LastHidden, 0.01)];
        let multi = MultiModelGraph::build(&cands);
        let plan = no_reuse_plan(&multi, &[0], &SystemConfig::tiny());
        let est = estimate_peak_memory(&multi, &plan.actions, 4, 1234, 2.0);
        assert_eq!(est.workspace_bytes, 1234);
        assert_eq!(
            est.total(),
            est.params_bytes + est.optimizer_bytes + est.activation_bytes + 1234
        );
        assert!(est.optimizer_bytes > 0);
    }
}
