//! Execution backends: real CPU training vs. simulated hardware.
//!
//! Both backends sit behind one accounting interface so the Materializer
//! and Trainer are backend-agnostic:
//!
//! * the **real** backend executes tensor math; its clock is wall time and
//!   `charge_*` calls only update counters (IO already costs real time);
//! * the **simulated** backend skips arithmetic and advances a virtual
//!   clock: compute at the achieved-FLOPs rate, reads through the
//!   [`PageCacheModel`] (disk on miss, DRAM on hit), writes at disk rate,
//!   plus the fixed session/epoch/batch overheads from the
//!   [`HardwareProfile`].
//!
//! The busy-time counter divided by elapsed time is the paper's GPU
//! utilization metric (Fig 11).

use crate::config::HardwareProfile;
use nautilus_store::{PageCacheModel, SharedIoStats};
use nautilus_util::telemetry;
use std::time::Instant;

/// Which backend a session runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Actually execute training on CPU (tiny scale).
    Real,
    /// Charge costs to a virtual clock (paper scale).
    Simulated,
}

/// The accounting backend.
#[derive(Debug)]
pub struct Backend {
    kind: BackendKind,
    hw: HardwareProfile,
    started: Instant,
    /// Virtual clock, seconds (simulated only).
    sim_clock: f64,
    /// Seconds attributed to useful compute.
    busy_secs: f64,
    /// Total FLOPs charged.
    flops: f64,
    /// Shared IO counters (also wired into the real stores).
    pub io: SharedIoStats,
    cache: PageCacheModel,
}

impl Backend {
    /// Creates a backend of the given kind.
    pub fn new(kind: BackendKind, hw: HardwareProfile, io: SharedIoStats) -> Self {
        let cache = PageCacheModel::new(hw.page_cache_bytes);
        Backend { kind, hw, started: Instant::now(), sim_clock: 0.0, busy_secs: 0.0, flops: 0.0, io, cache }
    }

    /// The backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// True when tensors must actually be computed.
    pub fn is_real(&self) -> bool {
        self.kind == BackendKind::Real
    }

    /// Elapsed seconds: wall time (real) or virtual clock (simulated).
    pub fn elapsed_secs(&self) -> f64 {
        match self.kind {
            BackendKind::Real => self.started.elapsed().as_secs_f64(),
            BackendKind::Simulated => self.sim_clock,
        }
    }

    /// Seconds attributed to useful compute so far.
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    /// Total FLOPs charged so far.
    pub fn total_flops(&self) -> f64 {
        self.flops
    }

    /// Folds compute accounted by a worker backend into this one. Used when
    /// independent training units run concurrently on the real backend: each
    /// worker tracks its own busy time and FLOPs (IO stats are already shared
    /// through [`SharedIoStats`]), and the session backend absorbs them so
    /// aggregate metrics match the serial accounting.
    pub fn absorb_compute(&mut self, busy_secs: f64, flops: f64) {
        self.busy_secs += busy_secs;
        self.flops += flops;
    }

    /// Charges `flops` of training/inference compute.
    ///
    /// Simulated: advances the clock. Real: records the measured duration
    /// the caller observed (`measured_secs`), attributing it to busy time.
    pub fn charge_compute(&mut self, flops: f64, measured_secs: Option<f64>) {
        self.flops += flops;
        telemetry::FLOPS.add(flops as u64);
        match self.kind {
            BackendKind::Simulated => {
                let secs = flops / self.hw.achieved_flops_per_sec;
                self.sim_clock += secs;
                self.busy_secs += secs;
            }
            BackendKind::Real => {
                if let Some(s) = measured_secs {
                    self.busy_secs += s;
                }
            }
        }
    }

    /// Charges a read of `bytes` of object `key`.
    ///
    /// Simulated: page-cache model decides disk vs. DRAM time and updates
    /// the IO counters. Real: the store already did the IO and counted it;
    /// this is a no-op.
    pub fn charge_read(&mut self, key: &str, bytes: u64) {
        if self.kind == BackendKind::Real {
            return;
        }
        let outcome = self.cache.read(key, bytes);
        if outcome.miss_bytes > 0 {
            self.io.record_disk_read(outcome.miss_bytes);
            self.sim_clock += outcome.miss_bytes as f64 / self.hw.disk_bytes_per_sec;
        }
        if outcome.hit_bytes > 0 {
            self.io.record_cached_read(outcome.hit_bytes);
            self.sim_clock += outcome.hit_bytes as f64 / self.hw.dram_bytes_per_sec;
        }
    }

    /// Charges a write of `bytes` to object `key` (simulated only; real
    /// stores count their own writes).
    pub fn charge_write(&mut self, key: &str, bytes: u64) {
        if self.kind == BackendKind::Real {
            return;
        }
        self.cache.write(key, bytes);
        self.io.record_write(bytes);
        self.sim_clock += bytes as f64 / self.hw.disk_bytes_per_sec;
    }

    /// Charges fixed overhead seconds (simulated only — on the real
    /// backend overheads are real time).
    pub fn charge_overhead(&mut self, secs: f64) {
        if self.kind == BackendKind::Simulated {
            self.sim_clock += secs;
        }
    }

    /// Per-unit-session fixed overhead.
    pub fn charge_session_overhead(&mut self) {
        self.charge_overhead(self.hw.session_overhead_secs);
    }

    /// Per-epoch fixed overhead.
    pub fn charge_epoch_overhead(&mut self) {
        self.charge_overhead(self.hw.epoch_overhead_secs);
    }

    /// Per-mini-batch fixed overhead.
    pub fn charge_batch_overhead(&mut self) {
        self.charge_overhead(self.hw.batch_overhead_secs);
    }

    /// Invalidate a cached object (dropped materialization).
    pub fn invalidate_cache(&mut self, key: &str) {
        self.cache.invalidate(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Backend {
        let hw = HardwareProfile {
            achieved_flops_per_sec: 1e9,
            disk_bytes_per_sec: 1e6,
            dram_bytes_per_sec: 1e9,
            page_cache_bytes: 10_000,
            session_overhead_secs: 1.0,
            epoch_overhead_secs: 0.5,
            batch_overhead_secs: 0.1,
        };
        Backend::new(BackendKind::Simulated, hw, SharedIoStats::new())
    }

    #[test]
    fn compute_advances_clock_and_busy() {
        let mut b = sim();
        b.charge_compute(2e9, None);
        assert!((b.elapsed_secs() - 2.0).abs() < 1e-9);
        assert!((b.busy_secs() - 2.0).abs() < 1e-9);
        assert_eq!(b.total_flops(), 2e9);
    }

    #[test]
    fn first_read_is_disk_second_is_dram() {
        let mut b = sim();
        b.charge_read("x", 1000);
        let after_miss = b.elapsed_secs();
        assert!((after_miss - 1e-3).abs() < 1e-9, "{after_miss}");
        b.charge_read("x", 1000);
        let delta = b.elapsed_secs() - after_miss;
        assert!((delta - 1e-6).abs() < 1e-9, "{delta}");
        let io = b.io.snapshot();
        assert_eq!(io.disk_read_bytes, 1000);
        assert_eq!(io.cached_read_bytes, 1000);
    }

    #[test]
    fn writes_and_overheads() {
        let mut b = sim();
        b.charge_write("w", 2000);
        assert!((b.elapsed_secs() - 2e-3).abs() < 1e-9);
        b.charge_session_overhead();
        b.charge_epoch_overhead();
        b.charge_batch_overhead();
        assert!((b.elapsed_secs() - (2e-3 + 1.6)).abs() < 1e-9);
        assert_eq!(b.io.snapshot().disk_write_bytes, 2000);
        assert_eq!(b.busy_secs(), 0.0, "IO and overhead are not busy compute");
    }

    #[test]
    fn real_backend_uses_wall_clock_and_skips_charges() {
        let mut b = Backend::new(
            BackendKind::Real,
            HardwareProfile::default(),
            SharedIoStats::new(),
        );
        b.charge_read("x", 1_000_000);
        b.charge_write("y", 1_000_000);
        b.charge_overhead(1000.0);
        b.charge_compute(1e12, Some(0.25));
        assert!(b.elapsed_secs() < 10.0, "wall clock, not charged time");
        assert_eq!(b.io.snapshot().disk_read_bytes, 0);
        assert!((b.busy_secs() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn invalidation_forces_disk_again() {
        let mut b = sim();
        b.charge_read("x", 1000);
        b.invalidate_cache("x");
        b.charge_read("x", 1000);
        assert_eq!(b.io.snapshot().disk_read_bytes, 2000);
    }
}
