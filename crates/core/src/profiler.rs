//! The Profiler (paper §3): per-layer cost and size metrics.
//!
//! For every node of a candidate graph it derives the paper's four metrics
//! (§4.1), normalized per training record:
//!
//! * `ccomp` — training compute in FLOPs: forward cost × a multiplier of 3
//!   for trainable layers (forward + input gradient + parameter gradient),
//!   2 for frozen layers that gradients must pass through, and 1 for
//!   materializable layers (forward only);
//! * `sdisk` — output bytes on disk;
//! * `cload` — load cost in missed-compute FLOPs (derived by the planner
//!   from `sdisk` and the configured throughputs);
//! * `smem` — output bytes in memory, with composite layers contributing
//!   all internal activations (§4.3.3).

use nautilus_dnn::ModelGraph;
use nautilus_tensor::Shape;

/// Profile of one node, per training record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Forward-pass FLOPs.
    pub fwd_flops: u64,
    /// Output size in bytes (`sdisk` and the non-composite `smem`).
    pub out_bytes: u64,
    /// All backward-relevant activation bytes (composite rule, ≥ `out_bytes`).
    pub internal_bytes: u64,
    /// Materializable per Def 2.4.
    pub materializable: bool,
    /// Gradients flow into this node during training.
    pub requires_grad: bool,
    /// The node's own parameters are updated.
    pub trainable: bool,
    /// Parameter bytes carried by the node.
    pub param_bytes: u64,
    /// Per-record output shape.
    pub out_shape: Shape,
}

impl NodeProfile {
    /// The paper's `ccomp` multiplier for this node.
    pub fn ccomp_multiplier(&self) -> u64 {
        if self.trainable {
            3
        } else if self.requires_grad {
            2
        } else {
            1
        }
    }

    /// Training compute cost in FLOPs per record (`ccomp`).
    pub fn ccomp_flops(&self) -> u64 {
        self.ccomp_multiplier() * self.fwd_flops
    }
}

/// Profiles every node of a graph.
pub fn profile_graph(graph: &ModelGraph) -> Vec<NodeProfile> {
    let materializable = graph.materializable();
    let requires_grad = graph.requires_grad();
    graph
        .ids()
        .map(|id| {
            let node = graph.node(id);
            let input_shapes: Vec<Shape> =
                node.inputs.iter().map(|p| graph.shape(*p).clone()).collect();
            let out_shape = graph.shape(id).clone();
            let internal: usize =
                node.kind.internal_output_elements(&input_shapes).iter().sum();
            NodeProfile {
                fwd_flops: node.kind.forward_flops(&input_shapes),
                out_bytes: out_shape.num_bytes() as u64,
                internal_bytes: (internal * nautilus_tensor::ELEM_BYTES) as u64,
                materializable: materializable[id.index()],
                requires_grad: requires_grad[id.index()],
                trainable: node.trainable(),
                param_bytes: node.param_bytes() as u64,
                out_shape,
            }
        })
        .collect()
}

/// Total training FLOPs per record of a graph: `Σ ccomp(l)` (Eq 5 with all
/// layers computed).
pub fn total_ccomp_flops(profiles: &[NodeProfile]) -> u64 {
    profiles.iter().map(NodeProfile::ccomp_flops).sum()
}

/// Forward-only (inference) FLOPs per record.
pub fn total_fwd_flops(profiles: &[NodeProfile]) -> u64 {
    profiles.iter().map(|p| p.fwd_flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;

    #[test]
    fn feature_transfer_multipliers() {
        let cfg = BertConfig::tiny(8, 50);
        let g = feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 9, BuildScale::Real)
            .unwrap();
        let profiles = profile_graph(&g);
        // Backbone (everything below the head) is materializable: 1x.
        // Head transformer + classifier are trainable: 3x.
        let mult: Vec<u64> = profiles.iter().map(NodeProfile::ccomp_multiplier).collect();
        let threes = mult.iter().filter(|&&m| m == 3).count();
        let ones = mult.iter().filter(|&&m| m == 1).count();
        assert_eq!(threes, 2);
        assert_eq!(ones, profiles.len() - 2);
        assert!(mult.iter().all(|&m| m != 2), "no frozen pass-through layers in FTR");
    }

    #[test]
    fn fine_tune_has_pass_through_layers() {
        use nautilus_models::resnet::{fine_tune_model, ResNetConfig};
        let g = fine_tune_model(&ResNetConfig::tiny(16), 3, 2, BuildScale::Real).unwrap();
        let profiles = profile_graph(&g);
        // GAP sits above trainable blocks: frozen, but gradients pass: 2x.
        let twos = profiles.iter().filter(|p| p.ccomp_multiplier() == 2).count();
        assert!(twos >= 1, "expected frozen pass-through layers");
        let threes = profiles.iter().filter(|p| p.ccomp_multiplier() == 3).count();
        assert_eq!(threes, 4); // 3 blocks + classifier
    }

    #[test]
    fn composite_internal_exceeds_output() {
        let cfg = BertConfig::tiny(8, 50);
        let g = feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 9, BuildScale::Real)
            .unwrap();
        let profiles = profile_graph(&g);
        for (p, n) in profiles.iter().zip(g.nodes()) {
            match n.kind {
                nautilus_dnn::LayerKind::TransformerBlock { .. } => {
                    assert!(p.internal_bytes > p.out_bytes, "{}", n.name)
                }
                nautilus_dnn::LayerKind::Input { .. } => {
                    assert_eq!(p.internal_bytes, p.out_bytes)
                }
                _ => assert!(p.internal_bytes >= p.out_bytes),
            }
        }
    }

    #[test]
    fn totals_are_sums() {
        let cfg = BertConfig::tiny(8, 50);
        let g = feature_transfer_model(&cfg, FeatureStrategy::SumLast4, 9, BuildScale::Real)
            .unwrap();
        let profiles = profile_graph(&g);
        assert_eq!(
            total_ccomp_flops(&profiles),
            profiles.iter().map(|p| p.ccomp_flops()).sum::<u64>()
        );
        assert!(total_ccomp_flops(&profiles) > total_fwd_flops(&profiles));
    }
}
