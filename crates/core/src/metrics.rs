//! Run statistics and per-cycle reports.

use nautilus_store::IoStats;
use nautilus_util::json_struct;

/// Cumulative statistics of a model-selection session.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total elapsed seconds (virtual clock on the simulated backend).
    pub elapsed_secs: f64,
    /// Seconds attributed to useful compute.
    pub busy_secs: f64,
    /// Total FLOPs charged/executed.
    pub flops: f64,
    /// Bytes read from disk (page-cache misses on either backend).
    pub disk_read_bytes: u64,
    /// Bytes served from the page cache: the simulated backend's cache
    /// model, or the real store's model of the OS page cache.
    pub cached_read_bytes: u64,
    /// Bytes written.
    pub disk_write_bytes: u64,
}

json_struct!(RunStats {
    elapsed_secs,
    busy_secs,
    flops,
    disk_read_bytes,
    cached_read_bytes,
    disk_write_bytes
});

impl RunStats {
    /// Average compute utilization so far (the Fig 11 "GPU utilization"
    /// proxy).
    pub fn utilization(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            (self.busy_secs / self.elapsed_secs).min(1.0)
        }
    }

    pub(crate) fn from_parts(elapsed_secs: f64, busy_secs: f64, flops: f64, io: IoStats) -> Self {
        RunStats {
            elapsed_secs,
            busy_secs,
            flops,
            disk_read_bytes: io.disk_read_bytes,
            cached_read_bytes: io.cached_read_bytes,
            disk_write_bytes: io.disk_write_bytes,
        }
    }
}

/// Workload-initialization timing breakdown (Fig 6B's init split).
#[derive(Debug, Clone, Copy, Default)]
pub struct InitReport {
    /// Seconds creating the original model checkpoints.
    pub original_checkpoints_secs: f64,
    /// Seconds profiling the candidates.
    pub profiling_secs: f64,
    /// Seconds running the optimizer (MILP + fusion).
    pub optimize_secs: f64,
    /// Seconds generating checkpoints for the optimized plans.
    pub plan_checkpoints_secs: f64,
    /// Seconds the materialization MILP itself took (a slice of
    /// `optimize_secs`; zero for strategies that skip the MILP).
    pub milp_secs: f64,
    /// Total initialization seconds.
    pub total_secs: f64,
    /// Number of training units after fusion.
    pub num_units: usize,
    /// Number of materialized layers chosen.
    pub num_materialized: usize,
    /// Theoretical speedup (Eq 11) of the workload.
    pub theoretical_speedup: f64,
}

json_struct!(InitReport {
    original_checkpoints_secs,
    profiling_secs,
    optimize_secs,
    plan_checkpoints_secs,
    milp_secs,
    total_secs,
    num_units,
    num_materialized,
    theoretical_speedup
});

/// Report for one model-selection cycle (`fit` call).
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Training records accumulated through this cycle.
    pub train_records: usize,
    /// Validation records accumulated through this cycle.
    pub valid_records: usize,
    /// Seconds this cycle spent on materialization (data + features).
    pub materialize_secs: f64,
    /// Seconds this cycle spent training and evaluating.
    pub train_secs: f64,
    /// Total model-selection seconds for this cycle.
    pub cycle_secs: f64,
    /// Per-candidate validation accuracy (`None` on the simulated backend).
    pub accuracies: Vec<(String, Option<f32>)>,
    /// Best candidate by validation accuracy, when available.
    pub best: Option<(String, f32)>,
    /// Cumulative stats at the end of this cycle.
    pub stats: RunStats,
}

json_struct!(CycleReport {
    cycle,
    train_records,
    valid_records,
    materialize_secs,
    train_secs,
    cycle_secs,
    accuracies,
    best,
    stats
});

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_util::json::{from_slice, to_vec, FromJson};

    fn round_trip<T: nautilus_util::json::ToJson + FromJson>(v: &T) -> T {
        let bytes = to_vec(v);
        let json = from_slice(&bytes).expect("serialized report parses");
        T::from_json(&json).expect("report deserializes")
    }

    #[test]
    fn run_stats_json_round_trip() {
        let s = RunStats {
            elapsed_secs: 12.5,
            busy_secs: 7.25,
            flops: 3.5e9,
            disk_read_bytes: 1024,
            cached_read_bytes: 2048,
            disk_write_bytes: 512,
        };
        let back = round_trip(&s);
        assert_eq!(back.elapsed_secs, s.elapsed_secs);
        assert_eq!(back.busy_secs, s.busy_secs);
        assert_eq!(back.flops, s.flops);
        assert_eq!(back.disk_read_bytes, s.disk_read_bytes);
        assert_eq!(back.cached_read_bytes, s.cached_read_bytes);
        assert_eq!(back.disk_write_bytes, s.disk_write_bytes);
    }

    #[test]
    fn init_report_json_round_trip() {
        let r = InitReport {
            original_checkpoints_secs: 0.5,
            profiling_secs: 1.5,
            optimize_secs: 2.5,
            plan_checkpoints_secs: 0.25,
            milp_secs: 1.75,
            total_secs: 4.75,
            num_units: 3,
            num_materialized: 7,
            theoretical_speedup: 2.1,
        };
        let back = round_trip(&r);
        assert_eq!(back.milp_secs, r.milp_secs);
        assert_eq!(back.total_secs, r.total_secs);
        assert_eq!(back.num_units, r.num_units);
        assert_eq!(back.num_materialized, r.num_materialized);
        assert_eq!(back.theoretical_speedup, r.theoretical_speedup);
    }

    #[test]
    fn cycle_report_json_round_trip() {
        let r = CycleReport {
            cycle: 4,
            train_records: 100,
            valid_records: 25,
            materialize_secs: 0.75,
            train_secs: 3.25,
            cycle_secs: 4.0,
            accuracies: vec![("m0".into(), Some(0.875)), ("m1".into(), None)],
            best: Some(("m0".into(), 0.875)),
            stats: RunStats { elapsed_secs: 9.0, ..Default::default() },
        };
        let back = round_trip(&r);
        assert_eq!(back.cycle, r.cycle);
        assert_eq!(back.train_records, r.train_records);
        assert_eq!(back.accuracies, r.accuracies);
        assert_eq!(back.best, r.best);
        assert_eq!(back.stats.elapsed_secs, r.stats.elapsed_secs);
    }

    #[test]
    fn utilization_bounds() {
        let mut s = RunStats { elapsed_secs: 10.0, busy_secs: 6.0, ..Default::default() };
        assert!((s.utilization() - 0.6).abs() < 1e-9);
        s.busy_secs = 20.0;
        assert_eq!(s.utilization(), 1.0);
        s.elapsed_secs = 0.0;
        assert_eq!(s.utilization(), 0.0);
    }
}
