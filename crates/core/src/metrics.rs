//! Run statistics and per-cycle reports.

use nautilus_store::IoStats;
use nautilus_util::json_struct;

/// Cumulative statistics of a model-selection session.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total elapsed seconds (virtual clock on the simulated backend).
    pub elapsed_secs: f64,
    /// Seconds attributed to useful compute.
    pub busy_secs: f64,
    /// Total FLOPs charged/executed.
    pub flops: f64,
    /// Bytes read from disk.
    pub disk_read_bytes: u64,
    /// Bytes served from the page cache (simulated backend only).
    pub cached_read_bytes: u64,
    /// Bytes written.
    pub disk_write_bytes: u64,
}

json_struct!(RunStats {
    elapsed_secs,
    busy_secs,
    flops,
    disk_read_bytes,
    cached_read_bytes,
    disk_write_bytes
});

impl RunStats {
    /// Average compute utilization so far (the Fig 11 "GPU utilization"
    /// proxy).
    pub fn utilization(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            (self.busy_secs / self.elapsed_secs).min(1.0)
        }
    }

    pub(crate) fn from_parts(elapsed_secs: f64, busy_secs: f64, flops: f64, io: IoStats) -> Self {
        RunStats {
            elapsed_secs,
            busy_secs,
            flops,
            disk_read_bytes: io.disk_read_bytes,
            cached_read_bytes: io.cached_read_bytes,
            disk_write_bytes: io.disk_write_bytes,
        }
    }
}

/// Workload-initialization timing breakdown (Fig 6B's init split).
#[derive(Debug, Clone, Copy, Default)]
pub struct InitReport {
    /// Seconds creating the original model checkpoints.
    pub original_checkpoints_secs: f64,
    /// Seconds profiling the candidates.
    pub profiling_secs: f64,
    /// Seconds running the optimizer (MILP + fusion).
    pub optimize_secs: f64,
    /// Seconds generating checkpoints for the optimized plans.
    pub plan_checkpoints_secs: f64,
    /// Total initialization seconds.
    pub total_secs: f64,
    /// Number of training units after fusion.
    pub num_units: usize,
    /// Number of materialized layers chosen.
    pub num_materialized: usize,
    /// Theoretical speedup (Eq 11) of the workload.
    pub theoretical_speedup: f64,
}

json_struct!(InitReport {
    original_checkpoints_secs,
    profiling_secs,
    optimize_secs,
    plan_checkpoints_secs,
    total_secs,
    num_units,
    num_materialized,
    theoretical_speedup
});

/// Report for one model-selection cycle (`fit` call).
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Training records accumulated through this cycle.
    pub train_records: usize,
    /// Validation records accumulated through this cycle.
    pub valid_records: usize,
    /// Seconds this cycle spent on materialization (data + features).
    pub materialize_secs: f64,
    /// Seconds this cycle spent training and evaluating.
    pub train_secs: f64,
    /// Total model-selection seconds for this cycle.
    pub cycle_secs: f64,
    /// Per-candidate validation accuracy (`None` on the simulated backend).
    pub accuracies: Vec<(String, Option<f32>)>,
    /// Best candidate by validation accuracy, when available.
    pub best: Option<(String, f32)>,
    /// Cumulative stats at the end of this cycle.
    pub stats: RunStats,
}

json_struct!(CycleReport {
    cycle,
    train_records,
    valid_records,
    materialize_secs,
    train_secs,
    cycle_secs,
    accuracies,
    best,
    stats
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut s = RunStats { elapsed_secs: 10.0, busy_secs: 6.0, ..Default::default() };
        assert!((s.utilization() - 0.6).abs() < 1e-9);
        s.busy_secs = 20.0;
        assert_eq!(s.utilization(), 1.0);
        s.elapsed_secs = 0.0;
        assert_eq!(s.utilization(), 0.0);
    }
}
