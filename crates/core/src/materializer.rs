//! The Materializer (paper §3, §4.2.3): maintains materialized intermediate
//! layer outputs across labeling cycles.
//!
//! When a new batch of labeled data arrives, the materializer runs the
//! *output materialization graph* — the sub-DAG from raw inputs to the
//! chosen set `V`, everything computed — over just the new records and
//! appends the results to the feature store, one chunk per cycle
//! (incremental feature materialization). Train and validation splits are
//! kept under separate keys so the trainer can evaluate on features too.

use crate::backend::Backend;
use crate::multimodel::{MNodeId, MultiModelGraph};
use crate::spec::CandidateModel;
use nautilus_data::Dataset;
use nautilus_dnn::exec::{forward, BatchInputs};
use nautilus_dnn::graph::{GraphError, ModelGraph, NodeId, ParamInit};
use nautilus_store::{DiskBudget, StoreError, TensorStore};
use nautilus_tensor::Tensor;
use nautilus_util::telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Materializer errors.
#[derive(Debug)]
pub enum MatError {
    /// Graph construction failed.
    Graph(GraphError),
    /// Tensor execution failed.
    Exec(String),
    /// Store failure.
    Store(StoreError),
    /// The storage budget `Bdisk` would be exceeded (the planner's
    /// constraint Eq 10 (e) should prevent this; hitting it indicates the
    /// configured `r` was wrong and backoff has not caught up yet).
    Budget(nautilus_store::budget::BudgetExceeded),
}

impl std::fmt::Display for MatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatError::Graph(e) => write!(f, "materializer graph: {e}"),
            MatError::Exec(e) => write!(f, "materializer execution: {e}"),
            MatError::Store(e) => write!(f, "materializer store: {e}"),
            MatError::Budget(e) => write!(f, "materializer budget: {e}"),
        }
    }
}

impl std::error::Error for MatError {}

impl From<GraphError> for MatError {
    fn from(e: GraphError) -> Self {
        MatError::Graph(e)
    }
}

impl From<StoreError> for MatError {
    fn from(e: StoreError) -> Self {
        MatError::Store(e)
    }
}

/// The sub-DAG that computes every node in `V` from the raw input.
#[derive(Debug)]
pub struct MaterializationGraph {
    /// Executable graph (raw input + computed ancestors of `V`).
    pub graph: ModelGraph,
    /// The single raw-input placeholder.
    pub raw_input: NodeId,
    /// `(merged node, plan node, store key)` per materialized output.
    pub outputs: Vec<(MNodeId, NodeId, String)>,
    /// Forward FLOPs per record for the whole sub-DAG.
    pub fwd_flops_per_record: f64,
}

/// Builds the materialization graph for a chosen set `V`.
pub fn build_materialization_graph(
    multi: &MultiModelGraph,
    candidates: &[CandidateModel],
    v: &BTreeSet<MNodeId>,
) -> Result<MaterializationGraph, MatError> {
    // Ancestors of V.
    let mut needed = vec![false; multi.nodes.len()];
    let mut stack: Vec<MNodeId> = v.iter().copied().collect();
    while let Some(m) = stack.pop() {
        if needed[m.index()] {
            continue;
        }
        needed[m.index()] = true;
        stack.extend(multi.node(m).parents.iter().copied());
    }
    let mut graph = ModelGraph::new();
    let mut mapping: BTreeMap<MNodeId, NodeId> = BTreeMap::new();
    let mut raw_input = None;
    let mut flops = 0.0f64;
    for (i, mnode) in multi.nodes.iter().enumerate() {
        if !needed[i] {
            continue;
        }
        let m = MNodeId(i);
        if mnode.is_input {
            let id = graph.add_input(mnode.name.clone(), mnode.out_shape().clone());
            if raw_input.is_some() {
                return Err(MatError::Exec(
                    "workloads with multiple raw inputs are not supported".into(),
                ));
            }
            raw_input = Some(id);
            mapping.insert(m, id);
        } else {
            let (mi, nid) = mnode.exemplar;
            let src = candidates[mi].graph.node(nid);
            let inputs: Vec<NodeId> =
                mnode.parents.iter().map(|p| mapping[p]).collect();
            let init = if src.params.is_empty() && !src.param_shapes.is_empty() {
                ParamInit::ShapesOnly { sig: src.param_sig }
            } else {
                ParamInit::Given(src.params.clone())
            };
            let id = graph.add_layer(mnode.name.clone(), src.kind.clone(), &inputs, true, init)?;
            mapping.insert(m, id);
            flops += mnode.profile.fwd_flops as f64;
        }
    }
    let raw_input = raw_input
        .ok_or_else(|| MatError::Exec("materialization graph has no raw input".into()))?;
    let mut outputs = Vec::with_capacity(v.len());
    for &m in v {
        let plan_node = mapping[&m];
        graph.add_output(plan_node)?;
        outputs.push((m, plan_node, multi.node(m).key.clone()));
    }
    Ok(MaterializationGraph { graph, raw_input, outputs, fwd_flops_per_record: flops })
}

/// Stateful materializer bound to a feature store.
#[derive(Debug)]
pub struct Materializer {
    /// The backing feature store.
    pub store: TensorStore,
    graph: Option<MaterializationGraph>,
    v: BTreeSet<MNodeId>,
    budget: DiskBudget,
}

impl Materializer {
    /// Creates a materializer over a feature store, enforcing `Bdisk` at
    /// write time (runtime belt-and-suspenders on top of the planner's
    /// Eq 10 (e)).
    pub fn new(store: TensorStore, disk_budget_bytes: u64) -> Self {
        Materializer {
            store,
            graph: None,
            v: BTreeSet::new(),
            budget: DiskBudget::new(disk_budget_bytes),
        }
    }

    /// Bytes of budget still available.
    pub fn budget_remaining(&self) -> u64 {
        self.budget.remaining()
    }

    /// The current materialized set.
    pub fn v(&self) -> &BTreeSet<MNodeId> {
        &self.v
    }

    /// Total feature bytes on disk.
    pub fn feature_bytes(&self) -> u64 {
        self.store.total_bytes()
    }

    /// Installs a (new) materialized set: drops features that are no longer
    /// chosen, keeps still-valid keys (their records remain correct — keys
    /// are content-addressed by expression signature), and rebuilds the
    /// materialization graph. Returns the merged nodes whose features must
    /// be *backfilled* for the accumulated snapshot (newly chosen nodes; on
    /// the simulated backend, every node of a changed `V`, since no real
    /// store tracks what exists).
    pub fn install_v(
        &mut self,
        multi: &MultiModelGraph,
        candidates: &[CandidateModel],
        v: BTreeSet<MNodeId>,
        backend: &mut Backend,
    ) -> Result<BTreeSet<MNodeId>, MatError> {
        let _sp = telemetry::span("mat", "mat.install_v");
        if v == self.v && self.graph.is_some() {
            return Ok(BTreeSet::new());
        }
        let old = std::mem::take(&mut self.v);
        for &m in old.difference(&v) {
            for split in ["train", "valid"] {
                let key = format!("{}:{split}", multi.node(m).key);
                backend.invalidate_cache(&key);
                let freed = self.store.delete(&key)?;
                self.budget.release(freed);
            }
        }
        self.graph = if v.is_empty() {
            None
        } else {
            Some(build_materialization_graph(multi, candidates, &v)?)
        };
        let backfill = v
            .iter()
            .copied()
            .filter(|&m| {
                !backend.is_real()
                    && !old.contains(&m)
                    || backend.is_real()
                        && !self.store.contains(&format!("{}:train", multi.node(m).key))
            })
            .collect();
        self.v = v;
        Ok(backfill)
    }

    /// Materializes the given subset of `V` (a backfill after a plan
    /// change) for one split over the full accumulated snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn materialize_subset(
        &mut self,
        multi: &MultiModelGraph,
        candidates: &[CandidateModel],
        subset: &BTreeSet<MNodeId>,
        split: &str,
        data: Option<&Dataset>,
        n_records: usize,
        backend: &mut Backend,
    ) -> Result<(), MatError> {
        if subset.is_empty() || n_records == 0 {
            return Ok(());
        }
        let _sp = telemetry::span("mat", "mat.subset");
        debug_assert!(subset.is_subset(&self.v));
        let mg = build_materialization_graph(multi, candidates, subset)?;
        if backend.is_real() {
            let ds = data
                .ok_or_else(|| MatError::Exec("real backend requires record data".into()))?;
            let mut inputs = BatchInputs::new();
            inputs.insert(mg.raw_input, ds.inputs.clone());
            let start = Instant::now();
            let fwd = forward(&mg.graph, &inputs, false)
                .map_err(|e| MatError::Exec(e.to_string()))?;
            backend.charge_compute(
                mg.fwd_flops_per_record * n_records as f64,
                Some(start.elapsed().as_secs_f64()),
            );
            let items: Vec<(String, Tensor)> = mg
                .outputs
                .iter()
                .map(|(_, plan_node, key)| {
                    (format!("{key}:{split}"), fwd.output(*plan_node).clone())
                })
                .collect();
            for bytes in self.store.append_many(&items)? {
                self.budget.charge(bytes).map_err(MatError::Budget)?;
            }
        } else {
            backend.charge_compute(mg.fwd_flops_per_record * n_records as f64, None);
            for (m, _, key) in &mg.outputs {
                let bytes = multi.node(*m).profile.out_bytes * n_records as u64;
                self.budget.charge(bytes).map_err(MatError::Budget)?;
                backend.charge_write(&format!("{key}:{split}"), bytes);
            }
        }
        Ok(())
    }

    /// Materializes features for one batch of records under the given
    /// split (`"train"` / `"valid"`), appending one chunk per key.
    ///
    /// On the real backend `data` must carry the records; on the simulated
    /// backend only `n_records` is used.
    pub fn materialize_batch(
        &mut self,
        multi: &MultiModelGraph,
        split: &str,
        data: Option<&Dataset>,
        n_records: usize,
        backend: &mut Backend,
    ) -> Result<(), MatError> {
        let Some(mg) = &self.graph else { return Ok(()) };
        if n_records == 0 {
            return Ok(());
        }
        let _sp = telemetry::span("mat", "mat.batch");
        if backend.is_real() {
            let ds = data.ok_or_else(|| {
                MatError::Exec("real backend requires record data".into())
            })?;
            let mut inputs = BatchInputs::new();
            inputs.insert(mg.raw_input, ds.inputs.clone());
            let start = Instant::now();
            let fwd = forward(&mg.graph, &inputs, false)
                .map_err(|e| MatError::Exec(e.to_string()))?;
            backend.charge_compute(
                mg.fwd_flops_per_record * n_records as f64,
                Some(start.elapsed().as_secs_f64()),
            );
            let items: Vec<(String, Tensor)> = mg
                .outputs
                .iter()
                .map(|(_, plan_node, key)| {
                    (format!("{key}:{split}"), fwd.output(*plan_node).clone())
                })
                .collect();
            for bytes in self.store.append_many(&items)? {
                self.budget.charge(bytes).map_err(MatError::Budget)?;
            }
        } else {
            backend.charge_compute(mg.fwd_flops_per_record * n_records as f64, None);
            for (m, _, key) in &mg.outputs {
                let bytes = multi.node(*m).profile.out_bytes * n_records as u64;
                self.budget.charge(bytes).map_err(MatError::Budget)?;
                backend.charge_write(&format!("{key}:{split}"), bytes);
            }
        }
        Ok(())
    }

    /// Bytes per record across all materialized keys (for budget checks).
    pub fn bytes_per_record(&self, multi: &MultiModelGraph) -> u64 {
        self.v.iter().map(|&m| multi.node(m).profile.out_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::spec::Hyper;
    use crate::SystemConfig;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;
    use nautilus_store::SharedIoStats;
    use nautilus_tensor::Tensor;

    fn candidate() -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: "ftr".into(),
            graph: feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 9, BuildScale::Real)
                .unwrap(),
            hyper: Hyper { batch_size: 4, epochs: 1, optimizer: OptimizerSpec::sgd(0.1) },
            task: TaskKind::TokenTagging,
        }
    }

    fn token_dataset(n: usize) -> Dataset {
        let tokens: Vec<f32> = (0..n * 8).map(|i| (i % 50) as f32).collect();
        let labels = vec![0.0f32; n * 8];
        Dataset::new(
            Tensor::from_vec([n, 8], tokens).unwrap(),
            Tensor::from_vec([n, 8], labels).unwrap(),
        )
        .unwrap()
    }

    fn temp_store(tag: &str, io: SharedIoStats) -> TensorStore {
        let p = std::env::temp_dir().join(format!(
            "nautilus-matz-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TensorStore::open(p, io).unwrap()
    }

    fn v_of(multi: &MultiModelGraph, name: &str) -> BTreeSet<MNodeId> {
        let mut v = BTreeSet::new();
        for (i, n) in multi.nodes.iter().enumerate() {
            if n.name == name {
                v.insert(MNodeId(i));
            }
        }
        assert!(!v.is_empty(), "node {name} not found");
        v
    }

    #[test]
    fn materialized_features_match_inline_computation() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("match", io), 64 << 20);
        let v = v_of(&multi, "bert/block5");
        mat.install_v(&multi, &cands, v.clone(), &mut backend).unwrap();

        let ds = token_dataset(6);
        mat.materialize_batch(&multi, "train", Some(&ds), 6, &mut backend).unwrap();
        let key = format!("{}:train", multi.node(*v.iter().next().unwrap()).key);
        let (stored, _) = mat.store.read_all(&key).unwrap();
        assert_eq!(stored.shape().0, vec![6, 8, 32]);

        // Inline: run the full candidate graph and compare block5's output.
        let g = &cands[0].graph;
        let block5 = g.ids().find(|&id| g.node(id).name == "bert/block5").unwrap();
        let input = g.input_ids()[0];
        let mut bi = BatchInputs::new();
        bi.insert(input, ds.inputs.clone());
        let fwd = forward(g, &bi, false).unwrap();
        assert_eq!(fwd.output(block5), &stored, "materialized == inline, bitwise");
    }

    #[test]
    fn incremental_appends_accumulate() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("incr", io), 64 << 20);
        let v = v_of(&multi, "bert/block3");
        mat.install_v(&multi, &cands, v.clone(), &mut backend).unwrap();
        mat.materialize_batch(&multi, "train", Some(&token_dataset(4)), 4, &mut backend)
            .unwrap();
        mat.materialize_batch(&multi, "train", Some(&token_dataset(3)), 3, &mut backend)
            .unwrap();
        let key = format!("{}:train", multi.node(*v.iter().next().unwrap()).key);
        assert_eq!(mat.store.num_records(&key), 7);
    }

    #[test]
    fn install_v_change_drops_old_features() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("swap", io), 64 << 20);
        let v1 = v_of(&multi, "bert/block3");
        mat.install_v(&multi, &cands, v1, &mut backend).unwrap();
        mat.materialize_batch(&multi, "train", Some(&token_dataset(4)), 4, &mut backend)
            .unwrap();
        assert!(mat.feature_bytes() > 0);
        let v2 = v_of(&multi, "bert/block5");
        let backfill = mat.install_v(&multi, &cands, v2.clone(), &mut backend).unwrap();
        assert_eq!(backfill, v2, "new nodes need backfill");
        assert_eq!(mat.feature_bytes(), 0, "old features dropped");
        // Reinstalling the same V is a no-op.
        let backfill = mat
            .install_v(&multi, &cands, v_of(&multi, "bert/block5"), &mut backend)
            .unwrap();
        assert!(backfill.is_empty());
    }

    #[test]
    fn simulated_materialization_charges_compute_and_writes() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Simulated, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("sim", io.clone()), 64 << 20);
        let v = v_of(&multi, "bert/block5");
        mat.install_v(&multi, &cands, v, &mut backend).unwrap();
        mat.materialize_batch(&multi, "train", None, 100, &mut backend).unwrap();
        assert!(backend.elapsed_secs() > 0.0);
        let snap = io.snapshot();
        assert_eq!(snap.disk_write_bytes, 100 * 8 * 32 * 4);
    }

    #[test]
    fn partial_v_change_keeps_retained_keys_and_backfills_new_ones() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("partial", io), 64 << 20);

        let b3 = v_of(&multi, "bert/block3");
        let b5 = v_of(&multi, "bert/block5");
        let mut v1 = b3.clone();
        v1.extend(&b5);
        mat.install_v(&multi, &cands, v1.clone(), &mut backend).unwrap();
        let snapshot = token_dataset(6);
        mat.materialize_batch(&multi, "train", Some(&snapshot), 6, &mut backend).unwrap();

        // Swap block3 -> block4 while keeping block5.
        let b4 = v_of(&multi, "bert/block4");
        let mut v2 = b4.clone();
        v2.extend(&b5);
        let backfill = mat.install_v(&multi, &cands, v2, &mut backend).unwrap();
        assert_eq!(backfill, b4, "only the new node needs backfill");
        // Retained key intact; removed key gone.
        let key = |m: &BTreeSet<MNodeId>| {
            format!("{}:train", multi.node(*m.iter().next().unwrap()).key)
        };
        assert_eq!(mat.store.num_records(&key(&b5)), 6);
        assert_eq!(mat.store.num_records(&key(&b3)), 0);
        // Backfill the full snapshot for the new node only.
        mat.materialize_subset(&multi, &cands, &backfill, "train", Some(&snapshot), 6, &mut backend)
            .unwrap();
        assert_eq!(mat.store.num_records(&key(&b4)), 6);
        // Subsequent incremental batches cover both keys.
        mat.materialize_batch(&multi, "train", Some(&token_dataset(3)), 3, &mut backend)
            .unwrap();
        assert_eq!(mat.store.num_records(&key(&b5)), 9);
        assert_eq!(mat.store.num_records(&key(&b4)), 9);
        // And the backfilled features equal what a fresh materialization
        // would produce (content-addressed correctness).
        let (stored, _) = mat.store.read_all(&key(&b4)).unwrap();
        assert_eq!(stored.shape().dim(0), 9);
    }

    #[test]
    fn write_time_budget_enforcement() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        // A budget big enough for one small batch but not two.
        let one_batch_bytes = 4u64 * 8 * 32 * 4 + 64; // records x seq x dim x f32 + header
        let mut mat = Materializer::new(temp_store("budget", io), one_batch_bytes + 16);
        let v = v_of(&multi, "bert/block5");
        mat.install_v(&multi, &cands, v, &mut backend).unwrap();
        mat.materialize_batch(&multi, "train", Some(&token_dataset(4)), 4, &mut backend)
            .unwrap();
        let err = mat
            .materialize_batch(&multi, "train", Some(&token_dataset(4)), 4, &mut backend)
            .unwrap_err();
        assert!(matches!(err, MatError::Budget(_)), "{err}");
        assert!(mat.budget_remaining() < one_batch_bytes);
    }

    #[test]
    fn empty_v_is_a_no_op() {
        let cands = vec![candidate()];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let mut backend =
            Backend::new(BackendKind::Real, SystemConfig::tiny().hardware, io.clone());
        let mut mat = Materializer::new(temp_store("empty", io), 64 << 20);
        mat.install_v(&multi, &cands, BTreeSet::new(), &mut backend).unwrap();
        mat.materialize_batch(&multi, "train", Some(&token_dataset(4)), 4, &mut backend)
            .unwrap();
        assert_eq!(mat.feature_bytes(), 0);
    }
}
