//! The Trainer (paper §3): trains units according to the optimized plan.
//!
//! A unit trains all its member models in one pass over each mini-batch:
//! one shared forward over the fused graph, per-member losses seeded into
//! the member output heads, one shared backward, and one optimizer step
//! *per member branch* (the paper's multi-optimizer extension of Keras's
//! training loop). Mini-batches are drawn sequentially without shuffling,
//! which makes fused training step-for-step identical to training each
//! member alone — the property the accuracy-equivalence tests pin down.
//!
//! Every cycle retrains from the initial checkpoints (the paper's
//! `g(M, φ, D_k)` trains the candidate from its adapted initial state on
//! the full current snapshot).

use crate::backend::Backend;
use crate::fusion::TrainUnit;
use crate::multimodel::MultiModelGraph;
use crate::plan::{ExecutablePlan, PlanFeed};
use crate::profiler::{profile_graph, total_ccomp_flops, total_fwd_flops};
use crate::spec::CandidateModel;
use nautilus_data::Dataset;
use nautilus_dnn::checkpoint::checkpoint_bytes;
use nautilus_dnn::exec::{backward, forward, BatchInputs};
use nautilus_dnn::{ModelGraph, NodeId, Optimizer};
use nautilus_store::{EpochPrefetcher, StoreError, TensorStore};
use nautilus_tensor::Tensor;
use nautilus_util::telemetry;
use std::collections::HashMap;
use std::time::Instant;

/// The data visible to one cycle.
#[derive(Debug, Clone, Copy)]
pub enum CycleDataView<'a> {
    /// Real tensors (real backend).
    Real {
        /// Accumulated training split.
        train: &'a Dataset,
        /// Accumulated validation split.
        valid: &'a Dataset,
    },
    /// Record counts only (simulated backend).
    Virtual {
        /// Accumulated training records.
        n_train: usize,
        /// Accumulated validation records.
        n_valid: usize,
    },
}

impl CycleDataView<'_> {
    /// Training record count.
    pub fn n_train(&self) -> usize {
        match self {
            CycleDataView::Real { train, .. } => train.len(),
            CycleDataView::Virtual { n_train, .. } => *n_train,
        }
    }

    /// Validation record count.
    pub fn n_valid(&self) -> usize {
        match self {
            CycleDataView::Real { valid, .. } => valid.len(),
            CycleDataView::Virtual { n_valid, .. } => *n_valid,
        }
    }
}

/// Outcome of training one member for one cycle.
#[derive(Debug, Clone)]
pub struct MemberResult {
    /// Candidate index in the workload.
    pub candidate: usize,
    /// Candidate name.
    pub name: String,
    /// Validation accuracy (`None` on the simulated backend).
    pub accuracy: Option<f32>,
    /// Final-epoch mean training loss (`None` on the simulated backend).
    pub train_loss: Option<f32>,
}

/// Trainer errors.
#[derive(Debug)]
pub enum TrainError {
    /// Tensor execution failed.
    Exec(String),
    /// Feature/dataset store failure.
    Store(StoreError),
    /// Inconsistent data (missing tensors, shape drift).
    Data(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Exec(e) => write!(f, "trainer execution: {e}"),
            TrainError::Store(e) => write!(f, "trainer store: {e}"),
            TrainError::Data(e) => write!(f, "trainer data: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<StoreError> for TrainError {
    fn from(e: StoreError) -> Self {
        TrainError::Store(e)
    }
}

/// Trains one unit for one cycle and evaluates every member.
#[allow(clippy::too_many_arguments)]
pub fn train_unit(
    multi: &MultiModelGraph,
    plan: &ExecutablePlan,
    unit: &TrainUnit,
    candidates: &[CandidateModel],
    data: &CycleDataView<'_>,
    store: &TensorStore,
    backend: &mut Backend,
    full_checkpoints: bool,
) -> Result<Vec<MemberResult>, TrainError> {
    train_unit_with(multi, plan, unit, candidates, data, store, backend, full_checkpoints, false)
}

/// [`train_unit`] with explicit control of per-epoch shuffling.
///
/// The permutation is seeded by `(record count, epoch)` only, so every
/// execution strategy — and every fused/solo arrangement — draws the
/// *identical* mini-batch sequence, preserving bit-exact equivalence.
#[allow(clippy::too_many_arguments)]
pub fn train_unit_with(
    multi: &MultiModelGraph,
    plan: &ExecutablePlan,
    unit: &TrainUnit,
    candidates: &[CandidateModel],
    data: &CycleDataView<'_>,
    store: &TensorStore,
    backend: &mut Backend,
    full_checkpoints: bool,
    shuffle: bool,
) -> Result<Vec<MemberResult>, TrainError> {
    train_unit_retaining(
        multi,
        plan,
        unit,
        candidates,
        data,
        store,
        backend,
        full_checkpoints,
        shuffle,
    )
    .map(|(results, _)| results)
}

/// [`train_unit_with`] that also hands back the trained plan graph.
///
/// On the real backend the returned graph holds the post-training
/// parameters for every member in the unit (the session maps them back to
/// per-candidate models for export/serving). The simulated backend trains
/// nothing, so it returns `None`.
#[allow(clippy::too_many_arguments)]
pub fn train_unit_retaining(
    multi: &MultiModelGraph,
    plan: &ExecutablePlan,
    unit: &TrainUnit,
    candidates: &[CandidateModel],
    data: &CycleDataView<'_>,
    store: &TensorStore,
    backend: &mut Backend,
    full_checkpoints: bool,
    shuffle: bool,
) -> Result<(Vec<MemberResult>, Option<ModelGraph>), TrainError> {
    let _sp = telemetry::span("train", "train.unit");
    backend.charge_session_overhead();

    // Initial checkpoint read: the whole plan (frozen shared parameters are
    // read once per unit; Current Practice units are singletons, so this is
    // exactly one full model read there).
    let init_ckpt = checkpoint_bytes(&plan.graph, false);
    backend.charge_read(&format!("ckpt:init:{}", unit.members[0]), init_ckpt);

    let n_train = data.n_train();
    let n_valid = data.n_valid();
    let batch = unit.batch_size.max(1);
    let batches_per_epoch = n_train.div_ceil(batch);

    // Per-record cost split of the plan graph: forward runs every epoch for
    // every present layer; each member's backward surcharge and optimizer
    // updates run only while that member is still within its epoch budget.
    let profiles = profile_graph(&plan.graph);
    let fwd_flops_per_record = total_fwd_flops(&profiles) as f64;
    let eval_flops_per_record = fwd_flops_per_record;
    let member_extras: Vec<f64> = unit
        .members
        .iter()
        .map(|&mi| crate::fusion::member_extra_flops(multi, &unit.plan.actions, mi))
        .collect();
    let member_update_flops: Vec<f64> = plan
        .member_trainables
        .iter()
        .map(|(_, nodes)| {
            4.0 * nodes
                .iter()
                .map(|&n| plan.graph.node(n).param_elements())
                .sum::<usize>() as f64
        })
        .collect();
    let _ = total_ccomp_flops(&profiles); // (kept: full-plan ccomp is fwd + extras)

    let mut results: Vec<MemberResult> = unit
        .members
        .iter()
        .map(|&mi| MemberResult {
            candidate: mi,
            name: candidates[mi].name.clone(),
            accuracy: None,
            train_loss: None,
        })
        .collect();

    let mut trained: Option<ModelGraph> = None;
    match data {
        CycleDataView::Virtual { .. } => {
            for epoch in 0..unit.epochs {
                backend.charge_epoch_overhead();
                charge_feed_reads(multi, plan, "train", n_train, backend);
                let active_extra: f64 = unit
                    .member_epochs
                    .iter()
                    .zip(&member_extras)
                    .filter(|(&e, _)| epoch < e)
                    .map(|(_, &x)| x)
                    .sum();
                let active_updates: f64 = unit
                    .member_epochs
                    .iter()
                    .zip(&member_update_flops)
                    .filter(|(&e, _)| epoch < e)
                    .map(|(_, &u)| u)
                    .sum();
                for b in 0..batches_per_epoch {
                    let bn = ((b + 1) * batch).min(n_train) - b * batch;
                    backend.charge_batch_overhead();
                    backend.charge_compute(
                        (fwd_flops_per_record + active_extra) * bn as f64 + active_updates,
                        None,
                    );
                }
            }
            // Validation: one forward pass over the valid split per member
            // head is shared in the fused graph, so it is one pass total.
            charge_feed_reads(multi, plan, "valid", n_valid, backend);
            backend.charge_compute(eval_flops_per_record * n_valid as f64, None);
        }
        CycleDataView::Real { train, valid } => {
            // Fresh parameters each cycle.
            let mut graph = plan.graph.clone();
            let mut optimizers: Vec<(usize, Optimizer)> = plan
                .member_trainables
                .iter()
                .map(|(mi, nodes)| {
                    (*mi, candidates[*mi].hyper.optimizer.build(nodes))
                })
                .collect();
            let train_targets = train.targets();
            let targets_per_record = train_targets.len().checked_div(n_train).unwrap_or(0);
            // Materialized feeds stream from the store through the epoch
            // prefetcher: generation e+1 (and, during the last epoch, the
            // validation split) is read and decoded on I/O threads while
            // epoch e computes. The prefetcher keeps all accounting on
            // this thread in the synchronous order, so results and IO
            // counters are bit-identical to synchronous reads.
            let train_keys = mat_feed_keys(plan, "train");
            let valid_keys = mat_feed_keys(plan, "valid");
            let mut prefetcher =
                EpochPrefetcher::new(store, &train_keys, &valid_keys, unit.epochs)?;
            let epoch_order = |epoch: usize| -> Vec<usize> {
                let mut order: Vec<usize> = (0..n_train).collect();
                if shuffle {
                    use nautilus_util::rng::SliceRandom;
                    let seed = (n_train as u64) << 20 | epoch as u64;
                    let mut rng = nautilus_tensor::init::seeded_rng(seed ^ 0x5EEDu64);
                    order.shuffle(&mut rng);
                }
                order
            };

            let mut last_epoch_loss = vec![0.0f32; unit.members.len()];
            for epoch in 0..unit.epochs {
                let _sp_epoch = telemetry::span("train", "train.epoch");
                backend.charge_epoch_overhead();
                let feeds = assemble_feeds(plan, prefetcher.epoch(epoch)?, "train", train)?;
                let mut epoch_loss = vec![0.0f32; unit.members.len()];
                let active: Vec<bool> =
                    unit.member_epochs.iter().map(|&e| epoch < e).collect();
                let active_extra: f64 = member_extras
                    .iter()
                    .zip(&active)
                    .filter(|(_, &a)| a)
                    .map(|(&x, _)| x)
                    .sum();
                let active_updates: f64 = member_update_flops
                    .iter()
                    .zip(&active)
                    .filter(|(_, &a)| a)
                    .map(|(&u, _)| u)
                    .sum();
                let order = epoch_order(epoch);
                for b in 0..batches_per_epoch {
                    let _sp_step = telemetry::span("train", "train.step");
                    let (s, e) = (b * batch, ((b + 1) * batch).min(n_train));
                    let idx = &order[s..e];
                    backend.charge_batch_overhead();
                    let t0 = Instant::now();
                    let mut inputs = BatchInputs::new();
                    for (node, tensor) in &feeds {
                        inputs.insert(*node, gather_records(tensor, idx));
                    }
                    let fwd = forward(&graph, &inputs, true)
                        .map_err(|err| TrainError::Exec(err.to_string()))?;
                    let batch_targets: Vec<i64> = idx
                        .iter()
                        .flat_map(|&r| {
                            train_targets[r * targets_per_record..(r + 1) * targets_per_record]
                                .iter()
                                .copied()
                        })
                        .collect();
                    let batch_targets = &batch_targets[..];
                    let mut out_grads: HashMap<NodeId, Tensor> = HashMap::new();
                    for (k, (mi, out_node)) in plan.member_outputs.iter().enumerate() {
                        if !active[k] {
                            continue; // this member finished its epoch budget
                        }
                        let (loss, grad) = candidates[*mi]
                            .task
                            .loss(fwd.output(*out_node), batch_targets)
                            .map_err(|err| TrainError::Exec(err.to_string()))?;
                        epoch_loss[k] += loss * (e - s) as f32;
                        out_grads.insert(*out_node, grad);
                    }
                    let grads = backward(&graph, &fwd, out_grads)
                        .map_err(|err| TrainError::Exec(err.to_string()))?;
                    for (k, (_, opt)) in optimizers.iter_mut().enumerate() {
                        if active[k] {
                            opt.step(&mut graph, &grads);
                        }
                    }
                    backend.charge_compute(
                        (fwd_flops_per_record + active_extra) * (e - s) as f64
                            + active_updates,
                        Some(t0.elapsed().as_secs_f64()),
                    );
                }
                for (k, l) in epoch_loss.iter().enumerate() {
                    if active[k] {
                        last_epoch_loss[k] = l / n_train.max(1) as f32;
                    }
                }
            }

            // Validation (prefetched alongside the last training epoch).
            let feeds = assemble_feeds(plan, prefetcher.valid()?, "valid", valid)?;
            let valid_targets = valid.targets();
            let t0 = Instant::now();
            let mut inputs = BatchInputs::new();
            for (node, tensor) in &feeds {
                inputs.insert(*node, tensor.clone());
            }
            let fwd = forward(&graph, &inputs, false)
                .map_err(|err| TrainError::Exec(err.to_string()))?;
            backend
                .charge_compute(eval_flops_per_record * n_valid as f64, Some(t0.elapsed().as_secs_f64()));
            for (k, (mi, out_node)) in plan.member_outputs.iter().enumerate() {
                let acc = candidates[*mi]
                    .task
                    .accuracy(fwd.output(*out_node), &valid_targets)
                    .map_err(|err| TrainError::Exec(err.to_string()))?;
                results[k].accuracy = Some(acc);
                results[k].train_loss = Some(last_epoch_loss[k]);
            }
            trained = Some(graph);
        }
    }

    // Trained-model checkpoint write: full models under Current Practice,
    // pruned (trainable-only) plans under Nautilus.
    let out_ckpt = checkpoint_bytes(&plan.graph, !full_checkpoints);
    backend.charge_write(&format!("ckpt:out:{}", unit.members[0]), out_ckpt);
    if backend.is_real() {
        backend.io.record_write(out_ckpt);
    }

    Ok((results, trained))
}

/// Simulated per-epoch data reads: every feed key (raw data / materialized
/// features) is read in full through the page-cache model.
fn charge_feed_reads(
    multi: &MultiModelGraph,
    plan: &ExecutablePlan,
    split: &str,
    records: usize,
    backend: &mut Backend,
) {
    for feed in &plan.feeds {
        match feed {
            PlanFeed::Raw { merged, .. } => {
                let bytes = multi.node(*merged).profile.out_bytes * records as u64;
                backend.charge_read(&format!("raw:{split}"), bytes);
            }
            PlanFeed::Materialized { merged, key, .. } => {
                let bytes = multi.node(*merged).profile.out_bytes * records as u64;
                backend.charge_read(&format!("{key}:{split}"), bytes);
            }
        }
    }
}

/// Store keys for the plan's materialized feeds, in feed order.
fn mat_feed_keys(plan: &ExecutablePlan, split: &str) -> Vec<String> {
    plan.feeds
        .iter()
        .filter_map(|feed| match feed {
            PlanFeed::Raw { .. } => None,
            PlanFeed::Materialized { key, .. } => Some(format!("{key}:{split}")),
        })
        .collect()
}

/// Real per-epoch data feeds: raw feeds slice the in-memory dataset,
/// materialized feeds take the tensors produced for this generation by the
/// [`EpochPrefetcher`] (chunk-granular store reads, one tensor per
/// materialized feed in feed order).
fn assemble_feeds(
    plan: &ExecutablePlan,
    mats: Vec<Tensor>,
    split: &str,
    data: &Dataset,
) -> Result<Vec<(NodeId, Tensor)>, TrainError> {
    let mut mats = mats.into_iter();
    let mut feeds = Vec::with_capacity(plan.feeds.len());
    for feed in &plan.feeds {
        match feed {
            PlanFeed::Raw { plan_node, .. } => {
                feeds.push((*plan_node, data.inputs.clone()));
            }
            PlanFeed::Materialized { plan_node, key, .. } => {
                let tensor = mats.next().ok_or_else(|| {
                    TrainError::Data(format!("missing prefetched feed '{key}:{split}'"))
                })?;
                if tensor.shape().dim(0) != data.len() {
                    return Err(TrainError::Data(format!(
                        "feature '{key}:{split}' has {} records, dataset has {}",
                        tensor.shape().dim(0),
                        data.len()
                    )));
                }
                feeds.push((*plan_node, tensor));
            }
        }
    }
    Ok(feeds)
}

fn gather_records(t: &Tensor, indices: &[usize]) -> Tensor {
    let record = t.shape().without_batch();
    let n = record.num_elements();
    let mut data = Vec::with_capacity(indices.len() * n);
    for &i in indices {
        data.extend_from_slice(&t.data()[i * n..(i + 1) * n]);
    }
    Tensor::from_vec(record.with_batch(indices.len()), data).expect("gather shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::fusion::fuse_models;
    use crate::spec::Hyper;
    use crate::SystemConfig;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::BuildScale;
    use nautilus_store::SharedIoStats;
    use std::collections::BTreeSet;

    fn candidate(lr: f32) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 30);
        CandidateModel {
            name: format!("ftr-{lr}"),
            graph: feature_transfer_model(&cfg, FeatureStrategy::LastHidden, 5, BuildScale::Real)
                .unwrap(),
            hyper: Hyper { batch_size: 4, epochs: 2, optimizer: OptimizerSpec::sgd(lr) },
            task: TaskKind::TokenTagging,
        }
    }

    fn token_dataset(n: usize, seed: u64) -> Dataset {
        use nautilus_util::rng::Rng;
        let mut rng = nautilus_tensor::init::seeded_rng(seed);
        let tokens: Vec<f32> = (0..n * 8).map(|_| rng.gen_range(0..30) as f32).collect();
        let labels: Vec<f32> = tokens.iter().map(|&t| (t as usize % 5) as f32).collect();
        Dataset::new(
            Tensor::from_vec([n, 8], tokens).unwrap(),
            Tensor::from_vec([n, 8], labels).unwrap(),
        )
        .unwrap()
    }

    fn temp_store(tag: &str, io: SharedIoStats) -> TensorStore {
        let p = std::env::temp_dir().join(format!(
            "nautilus-trn-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TensorStore::open(p, io).unwrap()
    }

    #[test]
    fn fused_training_equals_solo_training() {
        let cfg = SystemConfig::tiny();
        let cands = vec![candidate(0.3), candidate(0.1)];
        let multi = MultiModelGraph::build(&cands);
        let train = token_dataset(12, 1);
        let valid = token_dataset(6, 2);
        let data = CycleDataView::Real { train: &train, valid: &valid };
        let io = SharedIoStats::new();
        let store = temp_store("equiv", io.clone());

        // Solo units.
        let solo_units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let mut solo_acc = Vec::new();
        for unit in &solo_units {
            let plan = ExecutablePlan::build(&multi, &cands, unit).unwrap();
            let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io.clone());
            let r = train_unit(&multi, &plan, unit, &cands, &data, &store, &mut backend, true)
                .unwrap();
            solo_acc.push((r[0].candidate, r[0].accuracy.unwrap(), r[0].train_loss.unwrap()));
        }

        // Fused unit.
        let fused_units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true);
        assert_eq!(fused_units.len(), 1);
        let plan = ExecutablePlan::build(&multi, &cands, &fused_units[0]).unwrap();
        let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io.clone());
        let fused = train_unit(
            &multi,
            &plan,
            &fused_units[0],
            &cands,
            &data,
            &store,
            &mut backend,
            false,
        )
        .unwrap();

        for r in &fused {
            let (_, sa, sl) =
                solo_acc.iter().find(|(c, _, _)| *c == r.candidate).copied().unwrap();
            assert_eq!(r.accuracy.unwrap(), sa, "member {}", r.name);
            assert!((r.train_loss.unwrap() - sl).abs() < 1e-6);
        }
    }

    #[test]
    fn mixed_epoch_fused_training_equals_solo_training() {
        // Members with different epoch budgets fuse into one unit; each must
        // end up bit-identical to training it alone for its own epochs.
        let cfg = SystemConfig::tiny();
        let mut a = candidate(0.3);
        a.hyper.epochs = 2;
        a.name = "short".into();
        let mut b = candidate(0.1);
        b.hyper.epochs = 4;
        b.name = "long".into();
        let cands = vec![a, b];
        let multi = MultiModelGraph::build(&cands);
        let train = token_dataset(12, 5);
        let valid = token_dataset(6, 6);
        let data = CycleDataView::Real { train: &train, valid: &valid };
        let io = SharedIoStats::new();
        let store = temp_store("mixed", io.clone());

        let solo_units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let mut solo = Vec::new();
        for unit in &solo_units {
            let plan = ExecutablePlan::build(&multi, &cands, unit).unwrap();
            let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io.clone());
            let r = train_unit(&multi, &plan, unit, &cands, &data, &store, &mut backend, true)
                .unwrap();
            solo.push((r[0].candidate, r[0].accuracy.unwrap(), r[0].train_loss.unwrap()));
        }

        let fused_units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, true);
        assert_eq!(fused_units.len(), 1, "2- and 4-epoch members must fuse");
        assert_eq!(fused_units[0].member_epochs, vec![2, 4]);
        let plan = ExecutablePlan::build(&multi, &cands, &fused_units[0]).unwrap();
        let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io);
        let fused = train_unit(
            &multi,
            &plan,
            &fused_units[0],
            &cands,
            &data,
            &store,
            &mut backend,
            false,
        )
        .unwrap();
        for r in &fused {
            let (_, sa, sl) =
                solo.iter().find(|(c, _, _)| *c == r.candidate).copied().unwrap();
            assert_eq!(r.accuracy.unwrap(), sa, "member {}", r.name);
            assert!((r.train_loss.unwrap() - sl).abs() < 1e-6, "member {}", r.name);
        }
    }

    #[test]
    fn training_learns_the_token_task() {
        let cfg = SystemConfig::tiny();
        let mut c = candidate(0.0);
        c.hyper.optimizer = OptimizerSpec::adam(0.01);
        c.hyper.epochs = 12;
        let cands = vec![c];
        let multi = MultiModelGraph::build(&cands);
        let train = token_dataset(64, 3);
        let valid = token_dataset(16, 4);
        let data = CycleDataView::Real { train: &train, valid: &valid };
        let io = SharedIoStats::new();
        let store = temp_store("learn", io.clone());
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io);
        let r = train_unit(&multi, &plan, &units[0], &cands, &data, &store, &mut backend, true)
            .unwrap();
        // Token labels are a deterministic function of the token: the model
        // must beat the 1/5 chance rate comfortably.
        assert!(r[0].accuracy.unwrap() > 0.4, "accuracy {:?}", r[0].accuracy);
        assert!(backend.busy_secs() > 0.0);
    }

    #[test]
    fn shuffled_training_stays_equivalent_but_differs_from_sequential() {
        let cfg = SystemConfig::tiny();
        let cands = vec![candidate(0.3), candidate(0.1)];
        let multi = MultiModelGraph::build(&cands);
        let train = token_dataset(13, 7); // ragged final batch on purpose
        let valid = token_dataset(6, 8);
        let data = CycleDataView::Real { train: &train, valid: &valid };
        let io = SharedIoStats::new();
        let store = temp_store("shuffle", io.clone());

        let run = |fuse: bool, shuffle: bool| -> Vec<(usize, f32, f32)> {
            let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, fuse);
            let mut out = Vec::new();
            for unit in &units {
                let plan = ExecutablePlan::build(&multi, &cands, unit).unwrap();
                let mut backend = Backend::new(BackendKind::Real, cfg.hardware, io.clone());
                let r = train_unit_with(
                    &multi, &plan, unit, &cands, &data, &store, &mut backend, true, shuffle,
                )
                .unwrap();
                for m in r {
                    out.push((m.candidate, m.accuracy.unwrap(), m.train_loss.unwrap()));
                }
            }
            out.sort_by_key(|(c, _, _)| *c);
            out
        };

        let solo = run(false, true);
        let fused = run(true, true);
        assert_eq!(solo, fused, "shuffling must preserve fused/solo equivalence");
        let sequential = run(false, false);
        assert_ne!(
            solo.iter().map(|(_, _, l)| *l).collect::<Vec<_>>(),
            sequential.iter().map(|(_, _, l)| *l).collect::<Vec<_>>(),
            "shuffling must actually change the batch sequence"
        );
    }

    #[test]
    fn virtual_training_charges_time_and_io() {
        let cfg = SystemConfig::tiny();
        let cands = vec![candidate(0.1)];
        let multi = MultiModelGraph::build(&cands);
        let io = SharedIoStats::new();
        let store = temp_store("virt", io.clone());
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        let mut backend = Backend::new(BackendKind::Simulated, cfg.hardware, io.clone());
        let data = CycleDataView::Virtual { n_train: 100, n_valid: 25 };
        let r = train_unit(&multi, &plan, &units[0], &cands, &data, &store, &mut backend, true)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].accuracy.is_none());
        assert!(backend.elapsed_secs() > 0.0);
        assert!(backend.total_flops() > 0.0);
        let snap = io.snapshot();
        assert!(snap.disk_read_bytes > 0); // raw data + checkpoint reads
        assert!(snap.disk_write_bytes > 0); // checkpoint write
    }

    #[test]
    fn full_checkpoints_write_more_than_pruned() {
        let cfg = SystemConfig::tiny();
        let cands = vec![candidate(0.1)];
        let multi = MultiModelGraph::build(&cands);
        let units = fuse_models(&multi, &cands, &BTreeSet::new(), &cfg, false);
        let plan = ExecutablePlan::build(&multi, &cands, &units[0]).unwrap();
        let data = CycleDataView::Virtual { n_train: 50, n_valid: 10 };

        let mut writes = Vec::new();
        for full in [true, false] {
            let io = SharedIoStats::new();
            let store = temp_store(&format!("ckpt{full}"), io.clone());
            let mut backend = Backend::new(BackendKind::Simulated, cfg.hardware, io.clone());
            train_unit(&multi, &plan, &units[0], &cands, &data, &store, &mut backend, full)
                .unwrap();
            writes.push(io.snapshot().disk_write_bytes);
        }
        assert!(writes[0] > writes[1], "full {} <= pruned {}", writes[0], writes[1]);
    }
}
