//! Theoretical speedup (paper Eq 11).

use crate::profiler::profile_graph;
use crate::spec::CandidateModel;

/// Computes the paper's theoretical speedup: the ratio of total training
/// cost of all layers to the training cost of only the non-materializable
/// layers, epoch-weighted across the workload. It assumes every
/// computational redundancy is avoided at zero data-movement cost — the
/// "FLOPs Optimal" line of Fig 6(A).
pub fn theoretical_speedup(candidates: &[CandidateModel]) -> f64 {
    let mut all = 0.0f64;
    let mut non_mat = 0.0f64;
    for c in candidates {
        let epochs = c.hyper.epochs as f64;
        for p in profile_graph(&c.graph) {
            let cost = p.ccomp_flops() as f64 * epochs;
            all += cost;
            if !p.materializable {
                non_mat += cost;
            }
        }
    }
    if non_mat <= 0.0 {
        f64::INFINITY
    } else {
        all / non_mat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Hyper;
    use nautilus_dnn::{OptimizerSpec, TaskKind};
    use nautilus_models::bert::{feature_transfer_model, BertConfig, FeatureStrategy};
    use nautilus_models::resnet::{fine_tune_model, ResNetConfig};
    use nautilus_models::BuildScale;

    fn bert_cand(strategy: FeatureStrategy) -> CandidateModel {
        let cfg = BertConfig::tiny(8, 50);
        CandidateModel {
            name: strategy.label().to_string(),
            graph: feature_transfer_model(&cfg, strategy, 9, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 5, optimizer: OptimizerSpec::adam(0.01) },
            task: TaskKind::TokenTagging,
        }
    }

    #[test]
    fn feature_transfer_speedup_exceeds_fine_tuning() {
        let ftr = theoretical_speedup(&[bert_cand(FeatureStrategy::LastHidden)]);
        let ftu = theoretical_speedup(&[CandidateModel {
            name: "ftu".into(),
            graph: fine_tune_model(&ResNetConfig::tiny(16), 12, 2, BuildScale::Real).unwrap(),
            hyper: Hyper { batch_size: 8, epochs: 5, optimizer: OptimizerSpec::sgd(0.01) },
            task: TaskKind::Classification,
        }]);
        assert!(ftr > 1.0);
        assert!(ftu > 1.0);
        assert!(
            ftr > ftu,
            "feature transfer ({ftr:.2}x) should out-speed deep fine-tuning ({ftu:.2}x)"
        );
    }

    #[test]
    fn speedup_at_least_one() {
        let s = theoretical_speedup(&[bert_cand(FeatureStrategy::SumAllHidden)]);
        assert!(s >= 1.0);
        assert!(s.is_finite());
    }
}
