#![warn(missing_docs)]

//! Nautilus: optimized deep-transfer-learning model selection over evolving
//! training datasets (SIGMOD 2022 reproduction).
//!
//! Nautilus treats a DTL model-selection workload — a set of candidate
//! models adapted from one pre-trained source, retrained on every new
//! snapshot of an incrementally labeled dataset — as an instance of
//! multi-query optimization, and applies two optimizations:
//!
//! 1. **Materialization** ([`mat_opt`]): choose a set of *materializable*
//!    frozen-layer outputs to store on disk within a budget `Bdisk`, and
//!    rewrite every candidate into an optimal *reuse plan* that prunes,
//!    computes, or loads each layer (Def 4.5), via a single MILP (Eq 8–10).
//! 2. **Model fusion** ([`fusion`]): greedily fuse candidates that share
//!    frozen common subexpressions into multi-branch training units
//!    (Algorithm 1), bounded by a runtime memory budget `Bmem` checked with
//!    a topological live-tensor analysis ([`memory`], §4.3.3).
//!
//! The crate mirrors the paper's component architecture (§3): [`profiler`]
//! profiles candidates and builds the [`multimodel`] graph, the optimizer
//! modules produce a plan, the [`materializer`] maintains incremental
//! feature materialization across labeling cycles (§4.2.3), and the
//! [`trainer`] trains fused plans with per-branch optimizers. The
//! user-facing entry point is [`session::ModelSelection`], whose
//! `fit(train, valid)` is called once per labeling cycle.
//!
//! Execution runs on one of two [`backend`]s: a *real* backend that
//! actually trains (tiny scale; used to verify logical equivalence with
//! current practice), and a *simulated* backend that charges FLOP/IO costs
//! to a virtual clock (paper scale; used to regenerate the runtime
//! figures).

pub mod backend;
pub mod config;
pub mod error;
pub mod fusion;
pub mod mat_opt;
pub mod materializer;
pub mod memory;
pub mod metrics;
pub mod multimodel;
pub mod plan;
pub mod profiler;
pub mod session;
pub mod spec;
pub mod speedup;
pub mod trainer;
pub mod workloads;

pub use backend::BackendKind;
pub use config::{
    DistConfig, HardwareProfile, ObservabilityConfig, PlannerCosts, SystemConfig,
    SystemConfigBuilder,
};
pub use error::NautilusError;
pub use metrics::{CycleReport, RunStats};
pub use session::{ModelSelection, Strategy};
pub use spec::{CandidateModel, Hyper, ParamValue, SearchGrid};
