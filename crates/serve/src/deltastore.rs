//! Content-addressed delta checkpoint store.
//!
//! Evicted variants persist as a per-tenant *manifest* (node indices +
//! per-tensor content hashes) plus shared *blobs* — one file per distinct
//! tensor, named by content hash. Structurally identical delta tensors
//! across tenants land on the same blob, so disk usage scales with unique
//! content, not tenant count (NeurStore-style tensor-level dedup).
//!
//! Layout under the store root:
//!
//! ```text
//! blobs/<hash-hex>.t        one serialized tensor per distinct hash
//! manifests/<id>.json       tenant manifest (version, base sig, layout)
//! ```

use nautilus_dnn::delta::{tensor_hash, DeltaEntry, GraphDelta};
use nautilus_tensor::ser;
use nautilus_util::{json, json_struct};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delta store errors (IO, malformed manifests, corrupt blobs).
#[derive(Debug)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta store: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

fn store_err(e: impl std::fmt::Display) -> StoreError {
    StoreError(e.to_string())
}

struct Manifest {
    version: u32,
    model_version: u64,
    base_sig: u64,
    nodes: Vec<usize>,
    counts: Vec<usize>,
    hashes: Vec<u64>,
}

json_struct!(Manifest { version, model_version, base_sig, nodes, counts, hashes });

/// Outcome of persisting one delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorePut {
    /// Blobs newly written by this put.
    pub blobs_written: usize,
    /// Blobs already present (deduplicated against earlier puts).
    pub blobs_reused: usize,
    /// Bytes newly written (blobs only, excluding the manifest).
    pub bytes_written: u64,
}

/// A directory-backed, content-addressed store for variant deltas.
#[derive(Debug)]
pub struct DeltaStore {
    root: PathBuf,
    blobs_written: AtomicU64,
    blobs_reused: AtomicU64,
    blob_bytes_written: AtomicU64,
}

impl DeltaStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("blobs")).map_err(store_err)?;
        std::fs::create_dir_all(root.join("manifests")).map_err(store_err)?;
        Ok(DeltaStore {
            root,
            blobs_written: AtomicU64::new(0),
            blobs_reused: AtomicU64::new(0),
            blob_bytes_written: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cheap writability probe for health checks: the blob directory must
    /// exist and not be read-only.
    pub fn writable(&self) -> bool {
        std::fs::metadata(self.root.join("blobs"))
            .map(|m| m.is_dir() && !m.permissions().readonly())
            .unwrap_or(false)
    }

    fn blob_path(&self, hash: u64) -> PathBuf {
        self.root.join("blobs").join(format!("{hash:016x}.t"))
    }

    fn manifest_path(&self, id: &str) -> PathBuf {
        self.root.join("manifests").join(format!("{id}.json"))
    }

    /// Persists `delta` for tenant `id` at `model_version`, deduplicating
    /// blobs against everything already stored.
    pub fn put(
        &self,
        id: &str,
        model_version: u64,
        delta: &GraphDelta,
    ) -> Result<StorePut, StoreError> {
        let mut result = StorePut::default();
        let mut nodes = Vec::with_capacity(delta.entries.len());
        let mut counts = Vec::with_capacity(delta.entries.len());
        let mut hashes = Vec::new();
        for e in &delta.entries {
            nodes.push(e.node);
            counts.push(e.params.len());
            for t in &e.params {
                let h = tensor_hash(t);
                hashes.push(h);
                let path = self.blob_path(h);
                if path.exists() {
                    result.blobs_reused += 1;
                    self.blobs_reused.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Write-then-rename so a crashed put never leaves a torn
                // blob under its final content-addressed name.
                let bytes = ser::encode(t);
                let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
                std::fs::write(&tmp, &bytes).map_err(store_err)?;
                std::fs::rename(&tmp, &path).map_err(store_err)?;
                result.blobs_written += 1;
                result.bytes_written += bytes.len() as u64;
                self.blobs_written.fetch_add(1, Ordering::Relaxed);
                self.blob_bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
            }
        }
        let manifest =
            Manifest { version: 1, model_version, base_sig: delta.base_sig, nodes, counts, hashes };
        let bytes = json::to_vec(&manifest);
        let path = self.manifest_path(id);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &bytes).map_err(store_err)?;
        std::fs::rename(&tmp, &path).map_err(store_err)?;
        Ok(result)
    }

    /// Loads tenant `id`'s delta, verifying every blob's content hash.
    /// Returns the model version recorded at [`DeltaStore::put`] time.
    pub fn get(&self, id: &str) -> Result<(u64, GraphDelta), StoreError> {
        let bytes = std::fs::read(self.manifest_path(id)).map_err(store_err)?;
        let manifest: Manifest =
            json::from_slice(&bytes).map_err(|e| store_err(format!("manifest for '{id}': {e}")))?;
        if manifest.version != 1 {
            return Err(StoreError(format!("unsupported manifest version {}", manifest.version)));
        }
        if manifest.nodes.len() != manifest.counts.len()
            || manifest.hashes.len() != manifest.counts.iter().sum::<usize>()
        {
            return Err(StoreError(format!("inconsistent manifest for '{id}'")));
        }
        let mut entries = Vec::with_capacity(manifest.nodes.len());
        let mut hi = 0usize;
        for (&node, &count) in manifest.nodes.iter().zip(&manifest.counts) {
            let mut params = Vec::with_capacity(count);
            for _ in 0..count {
                let h = manifest.hashes[hi];
                hi += 1;
                let blob = std::fs::read(self.blob_path(h)).map_err(store_err)?;
                let t = ser::decode(&blob).map_err(store_err)?;
                if tensor_hash(&t) != h {
                    return Err(StoreError(format!("blob {h:016x} failed content verification")));
                }
                params.push(t);
            }
            entries.push(DeltaEntry { node, params });
        }
        Ok((manifest.model_version, GraphDelta { base_sig: manifest.base_sig, entries }))
    }

    /// Whether a manifest exists for tenant `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.manifest_path(id).exists()
    }

    /// Lifetime counters: `(blobs_written, blobs_reused, blob_bytes_written)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.blobs_written.load(Ordering::Relaxed),
            self.blobs_reused.load(Ordering::Relaxed),
            self.blob_bytes_written.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_tensor::Tensor;

    fn delta(vals: &[f32]) -> GraphDelta {
        GraphDelta {
            base_sig: 0xBA5E,
            entries: vec![DeltaEntry {
                node: 2,
                params: vec![Tensor::from_vec([vals.len()], vals.to_vec()).unwrap()],
            }],
        }
    }

    fn tmp_store(tag: &str) -> DeltaStore {
        let dir = std::env::temp_dir()
            .join(format!("nautilus-deltastore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DeltaStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let s = tmp_store("rt");
        let d = delta(&[1.0, 2.0, 3.0]);
        let put = s.put("tenant-a", 3, &d).unwrap();
        assert_eq!(put.blobs_written, 1);
        // Identical content under a different tenant: blob is reused.
        let put2 = s.put("tenant-b", 1, &d).unwrap();
        assert_eq!(put2.blobs_written, 0);
        assert_eq!(put2.blobs_reused, 1);
        let (v, back) = s.get("tenant-a").unwrap();
        assert_eq!(v, 3);
        assert_eq!(back.base_sig, d.base_sig);
        assert_eq!(back.entries[0].params, d.entries[0].params);
        assert!(s.contains("tenant-b"));
        assert!(!s.contains("tenant-c"));
        let _ = std::fs::remove_dir_all(s.root());
    }

    #[test]
    fn corrupted_blob_is_rejected() {
        let s = tmp_store("corrupt");
        let d = delta(&[4.0, 5.0]);
        s.put("t", 1, &d).unwrap();
        let h = tensor_hash(&d.entries[0].params[0]);
        let path = s.blob_path(h);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(s.get("t").is_err());
        let _ = std::fs::remove_dir_all(s.root());
    }
}
