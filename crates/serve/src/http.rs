//! HTTP/1.1 protocol layer for the serving plane.
//!
//! The parser, response builder, blocking client, and connection-finish
//! helper now live in [`nautilus_util::http`] so the distributed
//! execution plane (`nautilus-dist`) reuses the same hardened
//! implementation instead of forking it. This module re-exports the full
//! surface under its historical path; serving behavior is unchanged and
//! `tests/serving.rs` exercises the parser through these re-exports.

pub use nautilus_util::http::*;
