//! Versioned model registry with atomic hot swap.
//!
//! The registry holds at most one *current* model. Publishing a new one
//! swaps an `Arc` under a short-lived write lock; requests that already
//! hold the previous `Arc` keep using it untouched, so a swap never tears
//! an in-flight prediction. Versions increase monotonically from 1.

use nautilus_dnn::checkpoint;
use nautilus_dnn::{ModelGraph, NodeId};
use nautilus_tensor::Shape;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published, servable model.
#[derive(Debug)]
pub struct ModelArtifact {
    /// Monotonic registry version (1 = first publish).
    pub version: u64,
    /// The trained graph (forward-only use).
    pub graph: ModelGraph,
    /// The graph's single input placeholder.
    pub input: NodeId,
    /// The graph's single output head.
    pub output: NodeId,
    /// Per-record input shape (no batch axis).
    pub record_shape: Shape,
    /// Elements in one input record.
    pub record_elems: usize,
}

/// Registry errors.
#[derive(Debug)]
pub enum RegistryError {
    /// The graph is not servable (wrong number of inputs/outputs).
    Unservable(String),
    /// Loading a checkpoint failed.
    Checkpoint(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unservable(m) => write!(f, "unservable model: {m}"),
            RegistryError::Checkpoint(m) => write!(f, "registry checkpoint: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A versioned single-slot model store shared by the server's threads.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    current: RwLock<Option<Arc<ModelArtifact>>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry (no model published yet).
    pub fn new() -> Self {
        ModelRegistry { current: RwLock::new(None), next_version: AtomicU64::new(1) }
    }

    /// Publishes `graph` as the new current model, returning its version.
    ///
    /// Validates that the graph is servable (exactly one input placeholder
    /// and one output head). The swap is atomic: concurrent requests see
    /// either the old or the new artifact, never a mix.
    pub fn publish(&self, graph: ModelGraph) -> Result<u64, RegistryError> {
        let inputs = graph.input_ids();
        if inputs.len() != 1 {
            return Err(RegistryError::Unservable(format!(
                "expected 1 input placeholder, found {}",
                inputs.len()
            )));
        }
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(RegistryError::Unservable(format!(
                "expected 1 output head, found {}",
                outputs.len()
            )));
        }
        let input = inputs[0];
        let output = outputs[0];
        let record_shape = graph.shape(input).clone();
        let record_elems = record_shape.num_elements();
        if record_elems == 0 {
            return Err(RegistryError::Unservable("empty input shape".into()));
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let artifact =
            Arc::new(ModelArtifact { version, graph, input, output, record_shape, record_elems });
        *self.current.write().expect("registry lock") = Some(artifact);
        Ok(version)
    }

    /// Loads a checkpoint from `path` and publishes it.
    pub fn publish_from_checkpoint(&self, path: &Path) -> Result<u64, RegistryError> {
        let (graph, _) = checkpoint::load(path)
            .map_err(|e| RegistryError::Checkpoint(e.to_string()))?;
        self.publish(graph)
    }

    /// The current model, pinned: callers keep the returned `Arc` for the
    /// whole request, so later publishes cannot pull it out from under
    /// them.
    pub fn current(&self) -> Option<Arc<ModelArtifact>> {
        self.current.read().expect("registry lock").clone()
    }

    /// Version of the current model; 0 when nothing is published.
    pub fn version(&self) -> u64 {
        self.current().map_or(0, |a| a.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_tensor::init::seeded_rng;

    fn tiny_graph(seed: u64) -> ModelGraph {
        let mut rng = seeded_rng(seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [6]);
        let d = g
            .add_layer(
                "dense",
                LayerKind::Dense { in_dim: 6, out_dim: 3, act: Activation::None },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(d).unwrap();
        g
    }

    #[test]
    fn publish_validates_and_versions_monotonically() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.version(), 0);
        assert!(reg.current().is_none());

        let v1 = reg.publish(tiny_graph(1)).unwrap();
        assert_eq!(v1, 1);
        let v2 = reg.publish(tiny_graph(2)).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.current().unwrap().record_elems, 6);
    }

    #[test]
    fn publish_rejects_multi_output_graphs() {
        let mut rng = seeded_rng(3);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        for name in ["a", "b"] {
            let d = g
                .add_layer(
                    name,
                    LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                    &[inp],
                    false,
                    ParamInit::Seeded(&mut rng),
                )
                .unwrap();
            g.add_output(d).unwrap();
        }
        assert!(matches!(reg_err(g), RegistryError::Unservable(_)));
    }

    fn reg_err(g: ModelGraph) -> RegistryError {
        ModelRegistry::new().publish(g).unwrap_err()
    }

    #[test]
    fn hot_swap_leaves_pinned_artifact_intact() {
        let reg = ModelRegistry::new();
        reg.publish(tiny_graph(10)).unwrap();
        let pinned = reg.current().unwrap();
        reg.publish(tiny_graph(11)).unwrap();
        // The pinned artifact still exists and still answers for version 1.
        assert_eq!(pinned.version, 1);
        assert_eq!(reg.current().unwrap().version, 2);
    }

    #[test]
    fn checkpoint_round_trip_publishes() {
        let g = tiny_graph(20);
        let dir = std::env::temp_dir()
            .join(format!("nautilus-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        checkpoint::save(&g, &path).unwrap();
        let reg = ModelRegistry::new();
        let v = reg.publish_from_checkpoint(&path).unwrap();
        assert_eq!(v, 1);
        let art = reg.current().unwrap();
        assert_eq!(art.record_shape.num_elements(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
