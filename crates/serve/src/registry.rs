//! Many-model registry: tenant-keyed variants over shared frozen bases.
//!
//! The registry holds any number of published variants, each keyed by a
//! [`ModelId`] (tenant). Variants that share a frozen base — same
//! architecture, same frozen weights, per [`nautilus_dnn::base_signature`]
//! — hold the base weights **once** in an `Arc<BaseModel>`; per tenant the
//! registry keeps only the *delta* (trainable adapter/head tensors), and
//! structurally identical delta tensors are deduplicated through a
//! content-hash pool, so resident bytes scale with unique content rather
//! than tenant count.
//!
//! Publishing is an atomic per-tenant hot swap: requests that pinned the
//! previous `Arc<ModelArtifact>` keep using it untouched. Cold variants
//! LRU-evict their delta to a [`DeltaStore`](crate::deltastore::DeltaStore)
//! and fault back in transparently on the next [`ModelRegistry::get`].
//!
//! The pre-multi-tenant single-slot surface (`current`, `version`,
//! `publish_single*`) survives as thin deprecated wrappers over the
//! configured default tenant.

use crate::deltastore::DeltaStore;
use nautilus_core::config::ServingConfig;
use nautilus_dnn::checkpoint;
use nautilus_dnn::delta::{
    apply_delta, base_signature, extract_delta, strip_trainable, tensors_hash, DeltaEntry,
    GraphDelta,
};
use nautilus_dnn::exec::ParamOverrides;
use nautilus_dnn::quant::QuantizedModel;
use nautilus_dnn::{ModelGraph, NodeId};
use nautilus_tensor::Shape;
use nautilus_util::{eventlog, telemetry};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A validated tenant/variant identifier: 1–64 chars of
/// `[A-Za-z0-9._-]`, safe for URL paths and store filenames.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(String);

impl ModelId {
    /// Validates and wraps an identifier.
    pub fn new(s: impl Into<String>) -> Result<Self, RegistryError> {
        let s = s.into();
        let ok = !s.is_empty()
            && s.len() <= 64
            && s.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
            && !s.starts_with('.');
        if ok {
            Ok(ModelId(s))
        } else {
            Err(RegistryError::BadId(s))
        }
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The shared, trainable-stripped trunk of one model family: all frozen
/// weights, resident exactly once regardless of how many variants ride it.
#[derive(Debug)]
pub struct BaseModel {
    /// [`base_signature`] of the stripped graph — the pairing key.
    pub sig: u64,
    /// The graph with frozen params present and trainable params empty.
    pub graph: ModelGraph,
    /// The graph's single input placeholder.
    pub input: NodeId,
    /// The graph's single output head.
    pub output: NodeId,
    /// Per-record input shape (no batch axis).
    pub record_shape: Shape,
    /// Elements in one input record.
    pub record_elems: usize,
    /// Resident frozen parameter bytes.
    pub frozen_bytes: usize,
    /// Lazily built int8 form of the frozen dense trunk (see
    /// [`BaseModel::frozen_quant`]).
    frozen_quant: std::sync::OnceLock<Arc<QuantizedModel>>,
}

impl BaseModel {
    /// The int8 serving form of the frozen dense trunk: quantized once
    /// per base on first quantized publish, then shared (`Arc`) by every
    /// tenant of the family — the compute analogue of the base's
    /// one-resident-copy weight sharing.
    pub fn frozen_quant(&self) -> Arc<QuantizedModel> {
        Arc::clone(self.frozen_quant.get_or_init(|| {
            let rg = self.graph.requires_grad();
            Arc::new(QuantizedModel::from_graph_where(&self.graph, None, |id| !rg[id.index()]))
        }))
    }
}

/// One published, servable variant: a pinned base plus its delta.
#[derive(Debug)]
pub struct ModelArtifact {
    /// The tenant this variant answers for.
    pub id: ModelId,
    /// Per-tenant version, monotonic from 1 across publishes *and*
    /// evict/fault-in cycles of that tenant.
    pub version: u64,
    /// The shared base (Arc: one resident copy per model family).
    pub base: Arc<BaseModel>,
    /// Trainable tensors keyed by node, deduplicated across tenants.
    pub overrides: ParamOverrides,
    /// Logical delta bytes (before dedup).
    pub delta_bytes: usize,
    /// Per-record input shape (mirrors the base, kept here so request
    /// paths don't chase the extra pointer).
    pub record_shape: Shape,
    /// Elements in one input record.
    pub record_elems: usize,
    /// The base graph's input placeholder.
    pub input: NodeId,
    /// The base graph's output head.
    pub output: NodeId,
    /// int8 serving form (frozen trunk + this tenant's quantized head)
    /// when the variant was published with `quantize_int8`; `None` serves
    /// the ordinary f32 path.
    pub quant: Option<Arc<QuantizedModel>>,
}

impl ModelArtifact {
    /// Reconstructs the standalone full graph (base + delta) — the exact
    /// model solo serving would run. Used by tests and export paths; the
    /// hot path never materializes it.
    pub fn full_graph(&self) -> ModelGraph {
        let entries = self
            .overrides
            .iter()
            .map(|(id, params)| DeltaEntry { node: id.index(), params: params.as_ref().clone() })
            .collect::<Vec<_>>();
        let mut entries = entries;
        entries.sort_by_key(|e| e.node);
        let delta = GraphDelta { base_sig: self.base.sig, entries };
        apply_delta(&self.base.graph, &delta).expect("artifact delta matches its base")
    }
}

/// Registry errors.
#[derive(Debug)]
pub enum RegistryError {
    /// The graph is not servable (wrong number of inputs/outputs, or
    /// trainable params missing).
    Unservable(String),
    /// Loading a checkpoint failed.
    Checkpoint(String),
    /// The id is not a valid [`ModelId`].
    BadId(String),
    /// No variant published under this id.
    UnknownModel(String),
    /// Eviction requested but no delta store is configured.
    NoStore,
    /// The delta store failed (IO, corruption).
    Store(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unservable(m) => write!(f, "unservable model: {m}"),
            RegistryError::Checkpoint(m) => write!(f, "registry checkpoint: {m}"),
            RegistryError::BadId(m) => write!(f, "invalid model id '{m}'"),
            RegistryError::UnknownModel(m) => write!(f, "no model published under '{m}'"),
            RegistryError::NoStore => write!(f, "no delta store configured for eviction"),
            RegistryError::Store(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One entry in the content-hash delta pool. `refs` counts resident
/// artifacts sharing the tensors; the entry drops at zero.
#[derive(Debug)]
struct PoolEntry {
    params: Arc<Vec<Tensorish>>,
    refs: usize,
    bytes: usize,
}

type Tensorish = nautilus_tensor::Tensor;

/// Dedup pool: content hash -> bucket of distinct tensor lists. Buckets
/// verify real equality on hash hits, so collisions degrade to separate
/// storage instead of silent weight sharing.
#[derive(Debug, Default)]
struct DeltaPool {
    buckets: HashMap<u64, Vec<PoolEntry>>,
    stored_bytes: usize,
}

impl DeltaPool {
    fn intern(&mut self, params: Vec<Tensorish>) -> (u64, Arc<Vec<Tensorish>>, usize) {
        let hash = tensors_hash(&params);
        let bytes: usize = params.iter().map(|t| t.shape().num_bytes()).sum();
        let bucket = self.buckets.entry(hash).or_default();
        for e in bucket.iter_mut() {
            if *e.params == params {
                e.refs += 1;
                return (hash, Arc::clone(&e.params), bytes);
            }
        }
        let arc = Arc::new(params);
        bucket.push(PoolEntry { params: Arc::clone(&arc), refs: 1, bytes });
        self.stored_bytes += bytes;
        (hash, arc, bytes)
    }

    fn release(&mut self, hash: u64, params: &Arc<Vec<Tensorish>>) {
        if let Some(bucket) = self.buckets.get_mut(&hash) {
            if let Some(i) = bucket.iter().position(|e| Arc::ptr_eq(&e.params, params)) {
                bucket[i].refs -= 1;
                if bucket[i].refs == 0 {
                    self.stored_bytes -= bucket[i].bytes;
                    bucket.swap_remove(i);
                }
            }
            if bucket.is_empty() {
                self.buckets.remove(&hash);
            }
        }
    }

    fn unique_entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

/// Where a known variant currently lives.
#[derive(Debug)]
enum VariantState {
    /// In memory, ready to serve.
    Resident {
        artifact: Arc<ModelArtifact>,
        /// Pool keys held by this artifact (released on evict/replace).
        pool_keys: Vec<(u64, Arc<Vec<Tensorish>>)>,
    },
    /// Delta persisted in the store; base stays resident for fault-in.
    Evicted {
        base_sig: u64,
    },
}

#[derive(Debug)]
struct VariantSlot {
    version: u64,
    state: VariantState,
    /// LRU clock value of the last `get`.
    last_used: u64,
    delta_bytes: usize,
    /// Whether this tenant was published with int8 quantization; sticky
    /// across evict/fault-in so the rebuilt artifact serves identically.
    quantize: bool,
}

#[derive(Debug, Default)]
struct Inner {
    bases: HashMap<u64, Arc<BaseModel>>,
    variants: HashMap<ModelId, VariantSlot>,
    pool: DeltaPool,
    evictions: u64,
    fault_ins: u64,
}

/// Summary row for [`ModelRegistry::list`].
#[derive(Debug, Clone)]
pub struct ModelSummary {
    /// Tenant id.
    pub id: ModelId,
    /// Per-tenant version.
    pub version: u64,
    /// Whether the delta is resident (vs evicted to the store).
    pub resident: bool,
    /// Logical delta bytes.
    pub delta_bytes: usize,
    /// Base pairing signature.
    pub base_sig: u64,
}

/// Registry-wide accounting for `/stats` and the dedup gates.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryStats {
    /// Variants resident in memory.
    pub resident_variants: usize,
    /// Variants evicted to the delta store.
    pub evicted_variants: usize,
    /// Distinct resident bases.
    pub bases: usize,
    /// Bytes if every resident variant stored its full model standalone.
    pub bytes_logical: u64,
    /// Bytes actually resident: each base once + unique delta entries.
    pub bytes_stored: u64,
    /// Unique delta entries in the dedup pool.
    pub unique_delta_entries: usize,
    /// Lifetime evictions.
    pub evictions: u64,
    /// Lifetime fault-ins from the delta store.
    pub fault_ins: u64,
}

impl RegistryStats {
    /// Logical-over-stored bytes: how many standalone copies one resident
    /// footprint stands in for. 1.0 when nothing is shared.
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_stored == 0 {
            return 1.0;
        }
        self.bytes_logical as f64 / self.bytes_stored as f64
    }
}

/// Per-publish knobs beyond the graph itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct PublishOptions {
    /// Serve this variant through the int8 row-quantized path: dense
    /// weights are quantized once at publish (per-row symmetric scales)
    /// and inference accumulates in i32. The frozen trunk's quantized form
    /// is built once per base and shared across tenants.
    pub quantize_int8: bool,
}

/// A tenant-keyed model store shared by the server's threads.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    clock: AtomicU64,
    max_resident: usize,
    store: Option<DeltaStore>,
    default_id: ModelId,
    default_quantize: bool,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry with default policy: no delta store (eviction
    /// disabled) and default tenant `"default"`.
    pub fn new() -> Self {
        ModelRegistry {
            inner: Mutex::new(Inner::default()),
            clock: AtomicU64::new(1),
            max_resident: usize::MAX,
            store: None,
            default_id: ModelId("default".to_string()),
            default_quantize: false,
        }
    }

    /// A registry configured from [`ServingConfig`]: residency cap,
    /// delta store directory, and default tenant.
    pub fn with_config(cfg: &ServingConfig) -> Result<Self, RegistryError> {
        let store = match &cfg.delta_store_dir {
            Some(dir) => {
                Some(DeltaStore::open(dir).map_err(|e| RegistryError::Store(e.to_string()))?)
            }
            None => None,
        };
        Ok(ModelRegistry {
            inner: Mutex::new(Inner::default()),
            clock: AtomicU64::new(1),
            max_resident: cfg.max_resident_variants.max(1),
            store,
            default_id: ModelId::new(cfg.default_tenant.clone())?,
            default_quantize: cfg.quantize_int8,
        })
    }

    /// The tenant served by un-suffixed routes and deprecated wrappers.
    pub fn default_id(&self) -> &ModelId {
        &self.default_id
    }

    /// The residency cap (`usize::MAX` when eviction is disabled).
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Whether the delta store accepts writes; `None` when no store is
    /// configured (eviction disabled, which is healthy by definition).
    pub fn store_writable(&self) -> Option<bool> {
        self.store.as_ref().map(|s| s.writable())
    }

    /// Refreshes the registry-owned gauges (resident variants, bytes the
    /// delta store has persisted) after a mutation. `inner` must be held.
    fn refresh_gauges(&self, inner: &Inner) {
        if !telemetry::metrics_enabled() {
            return;
        }
        let resident = inner
            .variants
            .values()
            .filter(|s| matches!(s.state, VariantState::Resident { .. }))
            .count();
        telemetry::SERVE_RESIDENT_VARIANTS.set(resident as i64);
        if let Some(store) = &self.store {
            telemetry::SERVE_DELTA_STORE_BYTES.set(store.counters().2 as i64);
        }
    }

    /// The int8 serving form for one tenant: the base's shared quantized
    /// trunk merged with this tenant's freshly quantized head (the nodes
    /// its delta overrides).
    fn build_quant(base: &BaseModel, overrides: &ParamOverrides) -> Arc<QuantizedModel> {
        let head = QuantizedModel::from_graph_where(&base.graph, Some(overrides), |id| {
            overrides.contains_key(&id)
        });
        Arc::new(base.frozen_quant().merged_with(&head))
    }

    fn validate(graph: &ModelGraph) -> Result<(NodeId, NodeId, Shape), RegistryError> {
        let inputs = graph.input_ids();
        if inputs.len() != 1 {
            return Err(RegistryError::Unservable(format!(
                "expected 1 input placeholder, found {}",
                inputs.len()
            )));
        }
        let outputs = graph.outputs();
        if outputs.len() != 1 {
            return Err(RegistryError::Unservable(format!(
                "expected 1 output head, found {}",
                outputs.len()
            )));
        }
        let record_shape = graph.shape(inputs[0]).clone();
        if record_shape.num_elements() == 0 {
            return Err(RegistryError::Unservable("empty input shape".into()));
        }
        Ok((inputs[0], outputs[0], record_shape))
    }

    /// Publishes `graph` as tenant `id`'s new variant, returning the
    /// tenant's new version.
    ///
    /// The graph is split on the spot: its frozen weights either join an
    /// existing resident base (when the [`base_signature`] matches — the
    /// incoming copy is dropped and the shared `Arc` reused) or become a
    /// new base; its trainable tensors are interned through the dedup
    /// pool. The per-tenant swap is atomic; in-flight requests holding the
    /// previous artifact are unaffected.
    pub fn publish(&self, id: &str, graph: ModelGraph) -> Result<u64, RegistryError> {
        self.publish_with(id, graph, PublishOptions { quantize_int8: self.default_quantize })
    }

    /// [`publish`](Self::publish) with explicit [`PublishOptions`] instead
    /// of the registry-wide defaults.
    pub fn publish_with(
        &self,
        id: &str,
        graph: ModelGraph,
        opts: PublishOptions,
    ) -> Result<u64, RegistryError> {
        let id = ModelId::new(id)?;
        let (input, output, record_shape) = Self::validate(&graph)?;
        let delta = extract_delta(&graph)
            .map_err(|e| RegistryError::Unservable(e.to_string()))?;
        let record_elems = record_shape.num_elements();

        let mut inner = self.inner.lock().expect("registry lock");
        let base = match inner.bases.get(&delta.base_sig) {
            Some(b) => Arc::clone(b),
            None => {
                let stripped = strip_trainable(&graph);
                debug_assert_eq!(base_signature(&stripped), delta.base_sig);
                let frozen_bytes = stripped.params_bytes();
                let b = Arc::new(BaseModel {
                    sig: delta.base_sig,
                    graph: stripped,
                    input,
                    output,
                    record_shape: record_shape.clone(),
                    record_elems,
                    frozen_bytes,
                    frozen_quant: std::sync::OnceLock::new(),
                });
                inner.bases.insert(delta.base_sig, Arc::clone(&b));
                b
            }
        };
        drop(graph);

        let delta_bytes = delta.bytes();
        let mut overrides: ParamOverrides = HashMap::with_capacity(delta.entries.len());
        let mut pool_keys = Vec::with_capacity(delta.entries.len());
        for e in delta.entries {
            let (hash, arc, _) = inner.pool.intern(e.params);
            overrides.insert(NodeId(e.node), Arc::clone(&arc));
            pool_keys.push((hash, arc));
        }

        let version = inner.variants.get(&id).map_or(1, |s| s.version + 1);
        let quant = opts.quantize_int8.then(|| Self::build_quant(&base, &overrides));
        let artifact = Arc::new(ModelArtifact {
            id: id.clone(),
            version,
            base,
            overrides,
            delta_bytes,
            record_shape,
            record_elems,
            input,
            output,
            quant,
        });
        let slot = VariantSlot {
            version,
            state: VariantState::Resident { artifact, pool_keys },
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
            delta_bytes,
            quantize: opts.quantize_int8,
        };
        let tenant = id.0.clone();
        if let Some(old) = inner.variants.insert(id, slot) {
            if let VariantState::Resident { pool_keys, .. } = old.state {
                for (h, arc) in &pool_keys {
                    inner.pool.release(*h, arc);
                }
            }
        }
        self.enforce_capacity(&mut inner)?;
        self.refresh_gauges(&inner);
        eventlog::info(
            "serve.publish",
            &[
                ("tenant", eventlog::Value::Str(&tenant)),
                ("version", eventlog::Value::U64(version)),
                ("delta_bytes", eventlog::Value::U64(delta_bytes as u64)),
            ],
        );
        Ok(version)
    }

    /// Loads a full-model checkpoint from `path` and publishes it for `id`.
    pub fn publish_from_checkpoint(&self, id: &str, path: &Path) -> Result<u64, RegistryError> {
        let (graph, _) =
            checkpoint::load(path).map_err(|e| RegistryError::Checkpoint(e.to_string()))?;
        self.publish(id, graph)
    }

    /// The pinned artifact for `id`, faulting its delta in from the store
    /// if it was evicted. Callers keep the `Arc` for the whole request, so
    /// later publishes or evictions cannot tear an in-flight prediction.
    pub fn get(&self, id: &str) -> Result<Arc<ModelArtifact>, RegistryError> {
        let id = ModelId::new(id)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("registry lock");
        let slot =
            inner.variants.get_mut(&id).ok_or_else(|| RegistryError::UnknownModel(id.0.clone()))?;
        slot.last_used = tick;
        if let VariantState::Resident { artifact, .. } = &slot.state {
            return Ok(Arc::clone(artifact));
        }
        self.fault_in(&mut inner, &id)
    }

    /// Loads an evicted variant's delta back from the store and makes it
    /// resident (possibly LRU-evicting another variant to stay in budget).
    fn fault_in(
        &self,
        inner: &mut Inner,
        id: &ModelId,
    ) -> Result<Arc<ModelArtifact>, RegistryError> {
        let _sp = telemetry::span("serve", "serve.fault_in");
        let store = self.store.as_ref().ok_or(RegistryError::NoStore)?;
        let (version, delta) =
            store.get(id.as_str()).map_err(|e| RegistryError::Store(e.to_string()))?;
        let slot = inner.variants.get(id).expect("caller checked");
        let quantize = slot.quantize;
        let base_sig = match &slot.state {
            VariantState::Evicted { base_sig } => *base_sig,
            VariantState::Resident { artifact, .. } => return Ok(Arc::clone(artifact)),
        };
        if delta.base_sig != base_sig {
            return Err(RegistryError::Store(format!(
                "stored delta for '{id}' pairs with base {:#x}, registry has {base_sig:#x}",
                delta.base_sig
            )));
        }
        let base = inner
            .bases
            .get(&base_sig)
            .map(Arc::clone)
            .ok_or_else(|| RegistryError::Store(format!("base {base_sig:#x} no longer resident")))?;

        let delta_bytes = delta.bytes();
        let mut overrides: ParamOverrides = HashMap::with_capacity(delta.entries.len());
        let mut pool_keys = Vec::with_capacity(delta.entries.len());
        for e in delta.entries {
            let (hash, arc, _) = inner.pool.intern(e.params);
            overrides.insert(NodeId(e.node), Arc::clone(&arc));
            pool_keys.push((hash, arc));
        }
        let quant = quantize.then(|| Self::build_quant(&base, &overrides));
        let artifact = Arc::new(ModelArtifact {
            id: id.clone(),
            version,
            base: Arc::clone(&base),
            overrides,
            delta_bytes,
            record_shape: base.record_shape.clone(),
            record_elems: base.record_elems,
            input: base.input,
            output: base.output,
            quant,
        });
        let slot = inner.variants.get_mut(id).expect("caller checked");
        slot.state =
            VariantState::Resident { artifact: Arc::clone(&artifact), pool_keys };
        slot.delta_bytes = delta_bytes;
        slot.version = version;
        inner.fault_ins += 1;
        telemetry::SERVE_FAULT_INS.add(1);
        self.enforce_capacity(inner)?;
        self.refresh_gauges(inner);
        eventlog::info(
            "serve.fault_in",
            &[
                ("tenant", eventlog::Value::Str(id.as_str())),
                ("version", eventlog::Value::U64(version)),
                ("delta_bytes", eventlog::Value::U64(delta_bytes as u64)),
            ],
        );
        Ok(artifact)
    }

    /// Evicts `id`'s delta to the store, freeing its resident tensors
    /// (modulo sharing). The base stays resident for cheap fault-in.
    pub fn evict(&self, id: &str) -> Result<(), RegistryError> {
        let id = ModelId::new(id)?;
        let mut inner = self.inner.lock().expect("registry lock");
        self.evict_locked(&mut inner, &id)
    }

    fn evict_locked(&self, inner: &mut Inner, id: &ModelId) -> Result<(), RegistryError> {
        let _sp = telemetry::span("serve", "serve.evict");
        let store = self.store.as_ref().ok_or(RegistryError::NoStore)?;
        let slot =
            inner.variants.get(id).ok_or_else(|| RegistryError::UnknownModel(id.0.clone()))?;
        let (artifact, pool_keys) = match &slot.state {
            VariantState::Resident { artifact, pool_keys } => {
                (Arc::clone(artifact), pool_keys.clone())
            }
            VariantState::Evicted { .. } => return Ok(()),
        };
        let mut entries: Vec<DeltaEntry> = artifact
            .overrides
            .iter()
            .map(|(nid, params)| DeltaEntry { node: nid.index(), params: params.as_ref().clone() })
            .collect();
        entries.sort_by_key(|e| e.node);
        let delta = GraphDelta { base_sig: artifact.base.sig, entries };
        store
            .put(id.as_str(), artifact.version, &delta)
            .map_err(|e| RegistryError::Store(e.to_string()))?;
        for (h, arc) in &pool_keys {
            inner.pool.release(*h, arc);
        }
        let slot = inner.variants.get_mut(id).expect("checked above");
        slot.state = VariantState::Evicted { base_sig: artifact.base.sig };
        inner.evictions += 1;
        telemetry::SERVE_EVICTIONS.add(1);
        self.refresh_gauges(inner);
        eventlog::info(
            "serve.evict",
            &[
                ("tenant", eventlog::Value::Str(id.as_str())),
                ("version", eventlog::Value::U64(artifact.version)),
                ("delta_bytes", eventlog::Value::U64(artifact.delta_bytes as u64)),
            ],
        );
        Ok(())
    }

    /// While over the residency cap, evict the least-recently-used
    /// resident variant. No-op when no store is configured.
    fn enforce_capacity(&self, inner: &mut Inner) -> Result<(), RegistryError> {
        if self.store.is_none() {
            return Ok(());
        }
        loop {
            let resident = inner
                .variants
                .iter()
                .filter(|(_, s)| matches!(s.state, VariantState::Resident { .. }))
                .count();
            if resident <= self.max_resident {
                return Ok(());
            }
            let coldest = inner
                .variants
                .iter()
                .filter(|(_, s)| matches!(s.state, VariantState::Resident { .. }))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(id, _)| id.clone())
                .expect("resident > 0");
            self.evict_locked(inner, &coldest)?;
        }
    }

    /// All known variants (resident and evicted), sorted by id.
    pub fn list(&self) -> Vec<ModelSummary> {
        let inner = self.inner.lock().expect("registry lock");
        let mut rows: Vec<ModelSummary> = inner
            .variants
            .iter()
            .map(|(id, s)| {
                let (resident, base_sig) = match &s.state {
                    VariantState::Resident { artifact, .. } => (true, artifact.base.sig),
                    VariantState::Evicted { base_sig } => (false, *base_sig),
                };
                ModelSummary {
                    id: id.clone(),
                    version: s.version,
                    resident,
                    delta_bytes: s.delta_bytes,
                    base_sig,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.id.cmp(&b.id));
        rows
    }

    /// Registry-wide accounting (dedup ratio inputs, eviction counters).
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock");
        let mut st = RegistryStats {
            bases: inner.bases.len(),
            unique_delta_entries: inner.pool.unique_entries(),
            evictions: inner.evictions,
            fault_ins: inner.fault_ins,
            ..RegistryStats::default()
        };
        let mut stored_bases = 0u64;
        for b in inner.bases.values() {
            stored_bases += b.frozen_bytes as u64;
        }
        for s in inner.variants.values() {
            match &s.state {
                VariantState::Resident { artifact, .. } => {
                    st.resident_variants += 1;
                    st.bytes_logical +=
                        (artifact.base.frozen_bytes + artifact.delta_bytes) as u64;
                }
                VariantState::Evicted { .. } => st.evicted_variants += 1,
            }
        }
        st.bytes_stored = stored_bases + inner.pool.stored_bytes as u64;
        st
    }

    /// Publishes `graph` for the default tenant.
    #[deprecated(note = "use the tenant-keyed `publish(id, graph)`")]
    pub fn publish_single(&self, graph: ModelGraph) -> Result<u64, RegistryError> {
        let id = self.default_id.clone();
        self.publish(id.as_str(), graph)
    }

    /// Loads a checkpoint and publishes it for the default tenant.
    #[deprecated(note = "use the tenant-keyed `publish_from_checkpoint(id, path)`")]
    pub fn publish_single_from_checkpoint(&self, path: &Path) -> Result<u64, RegistryError> {
        let id = self.default_id.clone();
        self.publish_from_checkpoint(id.as_str(), path)
    }

    /// The default tenant's artifact, if published (single-slot view).
    #[deprecated(note = "use the tenant-keyed `get(id)`")]
    pub fn current(&self) -> Option<Arc<ModelArtifact>> {
        self.get(self.default_id.clone().as_str()).ok()
    }

    /// The default tenant's version; 0 when nothing is published.
    #[deprecated(note = "use `get(id)` / `list()`")]
    pub fn version(&self) -> u64 {
        #[allow(deprecated)]
        self.current().map_or(0, |a| a.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_tensor::init::seeded_rng;

    /// Frozen trunk (seed-stable) + per-tenant trainable head.
    fn variant_graph(tenant_seed: u64) -> ModelGraph {
        let mut frozen_rng = seeded_rng(40);
        let mut rng = seeded_rng(tenant_seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [6]);
        let trunk = g
            .add_layer(
                "trunk",
                LayerKind::Dense { in_dim: 6, out_dim: 6, act: Activation::Relu },
                &[inp],
                true,
                ParamInit::Seeded(&mut frozen_rng),
            )
            .unwrap();
        let d = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 6, out_dim: 3, act: Activation::None },
                &[trunk],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(d).unwrap();
        g
    }

    fn store_cfg(tag: &str, max_resident: usize) -> ServingConfig {
        let dir = std::env::temp_dir()
            .join(format!("nautilus-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServingConfig {
            max_resident_variants: max_resident,
            delta_store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServingConfig::default()
        }
    }

    #[test]
    fn publish_get_and_per_tenant_versions() {
        let reg = ModelRegistry::new();
        assert!(matches!(reg.get("a"), Err(RegistryError::UnknownModel(_))));
        assert_eq!(reg.publish("a", variant_graph(1)).unwrap(), 1);
        assert_eq!(reg.publish("b", variant_graph(2)).unwrap(), 1);
        assert_eq!(reg.publish("a", variant_graph(3)).unwrap(), 2);
        let a = reg.get("a").unwrap();
        assert_eq!(a.version, 2);
        assert_eq!(a.record_elems, 6);
        assert_eq!(reg.list().len(), 2);
        assert!(matches!(reg.get("no/slash"), Err(RegistryError::BadId(_))));
    }

    #[test]
    fn variants_share_one_resident_base() {
        let reg = ModelRegistry::new();
        for i in 0..4u64 {
            reg.publish(&format!("t{i}"), variant_graph(100 + i)).unwrap();
        }
        let arts: Vec<_> = (0..4).map(|i| reg.get(&format!("t{i}")).unwrap()).collect();
        for a in &arts[1..] {
            assert!(Arc::ptr_eq(&arts[0].base, &a.base), "bases must be one Arc");
        }
        let st = reg.stats();
        assert_eq!(st.bases, 1);
        assert_eq!(st.resident_variants, 4);
        // Stored = one base + 4 distinct heads; logical = 4 full models.
        let frozen = arts[0].base.frozen_bytes as u64;
        let head = arts[0].delta_bytes as u64;
        assert_eq!(st.bytes_stored, frozen + 4 * head);
        assert_eq!(st.bytes_logical, 4 * (frozen + head));
        assert!(st.dedup_ratio() > 1.0);
    }

    #[test]
    fn identical_deltas_are_pooled() {
        let reg = ModelRegistry::new();
        reg.publish("a", variant_graph(9)).unwrap();
        reg.publish("b", variant_graph(9)).unwrap();
        let (a, b) = (reg.get("a").unwrap(), reg.get("b").unwrap());
        let (na, pa) = a.overrides.iter().next().unwrap();
        let pb = &b.overrides[na];
        assert!(Arc::ptr_eq(pa, pb), "identical delta tensors must share one Arc");
        let st = reg.stats();
        assert_eq!(st.unique_delta_entries, 1);
        let frozen = a.base.frozen_bytes as u64;
        let head = a.delta_bytes as u64;
        assert_eq!(st.bytes_stored, frozen + head);
        assert_eq!(st.bytes_logical, 2 * (frozen + head));
    }

    #[test]
    fn evict_and_fault_in_round_trip() {
        let cfg = store_cfg("evict", 8);
        let reg = ModelRegistry::with_config(&cfg).unwrap();
        reg.publish("cold", variant_graph(5)).unwrap();
        let before = reg.get("cold").unwrap();
        reg.evict("cold").unwrap();
        assert!(!reg.list()[0].resident);
        assert_eq!(reg.stats().evictions, 1);
        // Pinned Arc still works after eviction.
        assert_eq!(before.version, 1);
        let back = reg.get("cold").unwrap();
        assert_eq!(back.version, 1);
        assert!(reg.list()[0].resident);
        assert_eq!(reg.stats().fault_ins, 1);
        for (nid, params) in &before.overrides {
            assert_eq!(back.overrides[nid].as_ref(), params.as_ref());
        }
        let _ = std::fs::remove_dir_all(cfg.delta_store_dir.as_deref().unwrap());
    }

    #[test]
    fn lru_capacity_evicts_coldest() {
        let cfg = store_cfg("lru", 2);
        let reg = ModelRegistry::with_config(&cfg).unwrap();
        reg.publish("a", variant_graph(1)).unwrap();
        reg.publish("b", variant_graph(2)).unwrap();
        // Touch "a" so "b" is coldest when "c" arrives.
        reg.get("a").unwrap();
        reg.publish("c", variant_graph(3)).unwrap();
        let rows = reg.list();
        let by_id = |id: &str| rows.iter().find(|r| r.id.as_str() == id).unwrap();
        assert!(by_id("a").resident);
        assert!(!by_id("b").resident, "LRU variant must be evicted");
        assert!(by_id("c").resident);
        // Faulting "b" back in pushes the now-coldest out.
        reg.get("b").unwrap();
        let resident: usize = reg.list().iter().filter(|r| r.resident).count();
        assert_eq!(resident, 2);
        let _ = std::fs::remove_dir_all(cfg.delta_store_dir.as_deref().unwrap());
    }

    #[test]
    fn evict_without_store_fails() {
        let reg = ModelRegistry::new();
        reg.publish("a", variant_graph(1)).unwrap();
        assert!(matches!(reg.evict("a"), Err(RegistryError::NoStore)));
    }

    #[test]
    fn deprecated_single_slot_wrappers_track_default_tenant() {
        #[allow(deprecated)]
        {
            let reg = ModelRegistry::new();
            assert_eq!(reg.version(), 0);
            assert!(reg.current().is_none());
            let v = reg.publish_single(variant_graph(1)).unwrap();
            assert_eq!(v, 1);
            assert_eq!(reg.version(), 1);
            assert_eq!(reg.current().unwrap().id.as_str(), "default");
        }
    }

    #[test]
    fn full_graph_reconstructs_the_published_model() {
        let reg = ModelRegistry::new();
        let g = variant_graph(77);
        reg.publish("t", g.clone()).unwrap();
        let full = reg.get("t").unwrap().full_graph();
        for (a, b) in g.nodes().iter().zip(full.nodes()) {
            assert_eq!(a.params, b.params);
        }
        assert_eq!(g.expr_signatures(), full.expr_signatures());
    }

    #[test]
    fn publish_rejects_multi_output_graphs() {
        let mut rng = seeded_rng(3);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [4]);
        for name in ["a", "b"] {
            let d = g
                .add_layer(
                    name,
                    LayerKind::Dense { in_dim: 4, out_dim: 2, act: Activation::None },
                    &[inp],
                    false,
                    ParamInit::Seeded(&mut rng),
                )
                .unwrap();
            g.add_output(d).unwrap();
        }
        let err = ModelRegistry::new().publish("x", g).unwrap_err();
        assert!(matches!(err, RegistryError::Unservable(_)));
    }

    #[test]
    fn hot_swap_leaves_pinned_artifact_intact() {
        let reg = ModelRegistry::new();
        reg.publish("t", variant_graph(10)).unwrap();
        let pinned = reg.get("t").unwrap();
        reg.publish("t", variant_graph(11)).unwrap();
        assert_eq!(pinned.version, 1);
        assert_eq!(reg.get("t").unwrap().version, 2);
    }

    #[test]
    fn checkpoint_round_trip_publishes() {
        let g = variant_graph(20);
        let dir =
            std::env::temp_dir().join(format!("nautilus-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        checkpoint::save(&g, &path).unwrap();
        let reg = ModelRegistry::new();
        let v = reg.publish_from_checkpoint("demo", &path).unwrap();
        assert_eq!(v, 1);
        assert_eq!(reg.get("demo").unwrap().record_shape.num_elements(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
