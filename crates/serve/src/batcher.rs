//! Dynamic micro-batching: fuse concurrent prediction requests into one
//! forward pass — across tenants.
//!
//! Requests enqueue a record and block on a reply channel; a single
//! batcher thread collects up to `max_batch` records — waiting at most
//! `max_delay_us` for stragglers once the first record arrives — and runs
//! them grouped by *shared base*: all records whose variants ride the same
//! frozen base share **one** trunk forward over the union batch
//! ([`forward_batch_shared_trunk`]), then each tenant's adapter/head
//! suffix runs on its own row slice — the serving dual of the paper's
//! FUSE optimization. Each request is pinned at submit time to the
//! artifact it was shape-validated against, so a hot swap never tears an
//! in-flight request. Kernel dispatch is pinned to per-record work, so a
//! record's result is **bit-identical** whether it rode alone, in a
//! single-tenant batch, or in a shared-trunk batch with other tenants —
//! batching is purely a throughput optimization, never a numerics change.

use crate::registry::{BaseModel, ModelArtifact, ModelRegistry, RegistryError};
use nautilus_core::config::ServingConfig;
use nautilus_dnn::exec::{forward_batch_shared_trunk, BatchInputs, TrunkGroup};
use nautilus_dnn::quant::forward_batch_quantized;
use nautilus_tensor::Tensor;
use nautilus_util::telemetry;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One answered prediction.
#[derive(Debug, Clone)]
pub struct PredictOutput {
    /// Tenant that answered.
    pub model_id: String,
    /// Per-tenant version of the model that answered.
    pub version: u64,
    /// Records of *this tenant* fused into the suffix pass (diagnostics).
    pub batch_size: usize,
    /// Records across all tenants that shared the base-trunk forward.
    pub trunk_batch: usize,
    /// Output head values for this record.
    pub values: Vec<f32>,
}

/// Why a prediction failed.
#[derive(Debug, Clone)]
pub enum PredictError {
    /// No variant published under the requested id.
    UnknownModel(String),
    /// Record length does not match the model's input shape.
    BadShape {
        /// Elements received.
        got: usize,
        /// Elements the model expects.
        want: usize,
    },
    /// The registry failed to produce the artifact (bad id, store IO).
    Registry(String),
    /// Forward execution failed.
    Exec(String),
    /// The batcher shut down before answering.
    Shutdown,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::UnknownModel(id) => write!(f, "no model published under '{id}'"),
            PredictError::BadShape { got, want } => {
                write!(f, "record has {got} elements, model expects {want}")
            }
            PredictError::Registry(m) => write!(f, "registry: {m}"),
            PredictError::Exec(m) => write!(f, "forward failed: {m}"),
            PredictError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

struct Pending {
    record: Vec<f32>,
    /// The artifact this record was shape-validated against in
    /// [`MicroBatcher::predict`]. The batch runs against this exact
    /// variant: a hot swap between validation and execution must neither
    /// fail the request (new shape ≠ validated shape) nor answer it with
    /// a model it was never validated for.
    artifact: Arc<ModelArtifact>,
    reply: mpsc::Sender<Result<PredictOutput, PredictError>>,
}

struct State {
    queue: Vec<Pending>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    registry: Arc<ModelRegistry>,
    max_batch: usize,
    max_delay: Duration,
}

/// The micro-batcher: a queue plus one worker thread.
pub struct MicroBatcher {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the batcher thread against `registry`.
    pub fn start(registry: Arc<ModelRegistry>, cfg: &ServingConfig) -> MicroBatcher {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: Vec::new(), shutdown: false }),
            cv: Condvar::new(),
            registry,
            max_batch: cfg.max_batch.max(1),
            max_delay: Duration::from_micros(cfg.max_delay_us),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("nautilus-serve-batcher".into())
            .spawn(move || batcher_loop(&worker_inner))
            .expect("spawn batcher thread");
        MicroBatcher { inner, worker: Some(worker) }
    }

    /// Submits one record for tenant `id` and blocks until its prediction
    /// (or failure) comes back. Shape validation happens up front against
    /// the tenant's current variant — faulting it in from the delta store
    /// if it was evicted — so bad requests never occupy batch slots; the
    /// validated artifact is pinned into the queue entry so a concurrent
    /// hot swap or eviction cannot change which model answers.
    pub fn predict(&self, id: &str, record: Vec<f32>) -> Result<PredictOutput, PredictError> {
        let artifact = match self.inner.registry.get(id) {
            Ok(a) => a,
            Err(RegistryError::UnknownModel(m)) => return Err(PredictError::UnknownModel(m)),
            Err(e) => return Err(PredictError::Registry(e.to_string())),
        };
        if record.len() != artifact.record_elems {
            return Err(PredictError::BadShape {
                got: record.len(),
                want: artifact.record_elems,
            });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.state.lock().expect("batcher lock");
            if st.shutdown {
                return Err(PredictError::Shutdown);
            }
            st.queue.push(Pending { record, artifact, reply: tx });
            telemetry::SERVE_BATCH_QUEUE_DEPTH.set(st.queue.len() as i64);
        }
        self.inner.cv.notify_all();
        rx.recv().unwrap_or(Err(PredictError::Shutdown))
    }

    /// Requests currently waiting in the batch queue — sampled by the
    /// health watchdog and reported by `/healthz`.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("batcher lock").queue.len()
    }

    /// Submits one record for the registry's default tenant.
    #[deprecated(note = "use the tenant-keyed `predict(id, record)`")]
    pub fn predict_default(&self, record: Vec<f32>) -> Result<PredictOutput, PredictError> {
        let id = self.inner.registry.default_id().as_str().to_string();
        self.predict(&id, record)
    }

    /// Drains the queue (answering everything still enqueued) and joins
    /// the worker thread.
    pub fn shutdown(&mut self) {
        self.inner.state.lock().expect("batcher lock").shutdown = true;
        self.inner.cv.notify_all();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(inner: &Inner) {
    loop {
        // Wait for the first record (or shutdown).
        let mut st = inner.state.lock().expect("batcher lock");
        while st.queue.is_empty() && !st.shutdown {
            st = inner.cv.wait(st).expect("batcher wait");
        }
        if st.queue.is_empty() && st.shutdown {
            return;
        }
        // A record is in: hold the door for `max_delay` or until the batch
        // fills. On shutdown, flush immediately.
        let deadline = Instant::now() + inner.max_delay;
        while st.queue.len() < inner.max_batch && !st.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = inner
                .cv
                .wait_timeout(st, deadline - now)
                .expect("batcher wait");
            st = next;
            if timeout.timed_out() {
                break;
            }
        }
        let n = st.queue.len().min(inner.max_batch);
        let batch: Vec<Pending> = st.queue.drain(..n).collect();
        telemetry::SERVE_BATCH_QUEUE_DEPTH.set(st.queue.len() as i64);
        drop(st);
        run_batch(batch);
    }
}

fn run_batch(batch: Vec<Pending>) {
    // Group by shared base first (one trunk forward per base), then by
    // pinned artifact within the base (one suffix pass per variant), both
    // in arrival order. Requests for variants of *different* bases — or
    // spanning a hot swap that changed the architecture — never mix.
    // Variants published with int8 quantization peel off into per-tenant
    // quantized passes: they trade the shared f32 trunk for the integer
    // kernels, so they never join an f32 trunk group.
    type TenantGroup = (Arc<ModelArtifact>, Vec<Pending>);
    let mut base_groups: Vec<(Arc<BaseModel>, Vec<TenantGroup>)> = Vec::new();
    let mut quant_groups: Vec<TenantGroup> = Vec::new();
    for p in batch {
        if p.artifact.quant.is_some() {
            match quant_groups.iter_mut().find(|(a, _)| Arc::ptr_eq(a, &p.artifact)) {
                Some((_, g)) => g.push(p),
                None => quant_groups.push((Arc::clone(&p.artifact), vec![p])),
            }
            continue;
        }
        let base = Arc::clone(&p.artifact.base);
        let idx = match base_groups.iter().position(|(b, _)| Arc::ptr_eq(b, &base)) {
            Some(i) => i,
            None => {
                base_groups.push((base, Vec::new()));
                base_groups.len() - 1
            }
        };
        let tenants = &mut base_groups[idx].1;
        match tenants.iter_mut().find(|(a, _)| Arc::ptr_eq(a, &p.artifact)) {
            Some((_, g)) => g.push(p),
            None => tenants.push((Arc::clone(&p.artifact), vec![p])),
        }
    }
    for (base, tenants) in base_groups {
        run_base_group(&base, tenants);
    }
    for (artifact, group) in quant_groups {
        run_quant_group(&artifact, group);
    }
}

/// One int8 execution: a single quantized tenant's pendings, fused into
/// one batch through [`forward_batch_quantized`].
fn run_quant_group(artifact: &Arc<ModelArtifact>, group: Vec<Pending>) {
    let quant = artifact.quant.as_ref().expect("routed on quant presence");
    let k = group.len();
    let _sp = telemetry::span("serve", "serve.batch");
    let t0 = Instant::now();
    let result = (|| -> Result<Tensor, PredictError> {
        let per = artifact.record_elems;
        let mut data = Vec::with_capacity(k * per);
        for p in &group {
            data.extend_from_slice(&p.record);
        }
        let stacked = Tensor::from_vec(artifact.record_shape.with_batch(k), data)
            .map_err(|e| PredictError::Exec(e.to_string()))?;
        let mut bi = BatchInputs::new();
        bi.insert(artifact.input, stacked);
        forward_batch_quantized(
            &artifact.base.graph,
            &bi,
            k,
            artifact.output,
            quant,
            Some(&artifact.overrides),
        )
        .map_err(|e| PredictError::Exec(e.to_string()))
    })();
    match result {
        Ok(out) => {
            telemetry::SERVE_BATCHES.add(1);
            telemetry::SERVE_BATCH_RECORDS.add(k as u64);
            telemetry::SERVE_BATCH_US.record(t0.elapsed().as_micros() as u64);
            let out_data = out.data();
            let out_per = out_data.len() / k.max(1);
            for (i, p) in group.into_iter().enumerate() {
                let _ = p.reply.send(Ok(PredictOutput {
                    model_id: artifact.id.as_str().to_string(),
                    version: artifact.version,
                    batch_size: k,
                    trunk_batch: k,
                    values: out_data[i * out_per..(i + 1) * out_per].to_vec(),
                }));
            }
        }
        Err(e) => {
            for p in group {
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

/// One shared-trunk execution: all of one base's pendings, any tenants.
fn run_base_group(base: &BaseModel, tenants: Vec<(Arc<ModelArtifact>, Vec<Pending>)>) {
    let total: usize = tenants.iter().map(|(_, g)| g.len()).sum();
    let _sp = telemetry::span("serve", "serve.batch");
    let t0 = Instant::now();
    match forward_shared(base, &tenants, total) {
        Ok(per_tenant_rows) => {
            telemetry::SERVE_BATCHES.add(1);
            telemetry::SERVE_BATCH_RECORDS.add(total as u64);
            if tenants.len() > 1 {
                telemetry::SERVE_TRUNK_SHARED_RECORDS.add(total as u64);
            }
            telemetry::SERVE_BATCH_US.record(t0.elapsed().as_micros() as u64);
            for ((artifact, group), rows) in tenants.into_iter().zip(per_tenant_rows) {
                let k = group.len();
                for (p, values) in group.into_iter().zip(rows) {
                    let _ = p.reply.send(Ok(PredictOutput {
                        model_id: artifact.id.as_str().to_string(),
                        version: artifact.version,
                        batch_size: k,
                        trunk_batch: total,
                        values,
                    }));
                }
            }
        }
        Err(e) => {
            for (_, group) in tenants {
                for p in group {
                    let _ = p.reply.send(Err(e.clone()));
                }
            }
        }
    }
}

/// Stacks all tenants' records, runs one trunk pass + per-tenant
/// suffixes, splits each tenant's output rows per record.
fn forward_shared(
    base: &BaseModel,
    tenants: &[(Arc<ModelArtifact>, Vec<Pending>)],
    total: usize,
) -> Result<Vec<Vec<Vec<f32>>>, PredictError> {
    let per = base.record_elems;
    let mut data = Vec::with_capacity(total * per);
    for (_, group) in tenants {
        for p in group {
            data.extend_from_slice(&p.record);
        }
    }
    let stacked = Tensor::from_vec(base.record_shape.with_batch(total), data)
        .map_err(|e| PredictError::Exec(e.to_string()))?;
    let groups: Vec<TrunkGroup<'_>> = tenants
        .iter()
        .map(|(a, g)| TrunkGroup { rows: g.len(), overrides: Some(&a.overrides) })
        .collect();
    let outs = forward_batch_shared_trunk(&base.graph, base.input, base.output, stacked, &groups)
        .map_err(|e| PredictError::Exec(e.to_string()))?;
    Ok(outs
        .iter()
        .zip(tenants)
        .map(|(out, (_, group))| {
            let k = group.len();
            let out_data = out.data();
            let out_per = out_data.len() / k.max(1);
            (0..k).map(|i| out_data[i * out_per..(i + 1) * out_per].to_vec()).collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::exec::{forward, BatchInputs};
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_dnn::ModelGraph;
    use nautilus_tensor::init::seeded_rng;
    use nautilus_util::rng::Rng;

    fn model(seed: u64, in_dim: usize, out_dim: usize) -> ModelGraph {
        let mut rng = seeded_rng(seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [in_dim]);
        let h = g
            .add_layer(
                "hidden",
                LayerKind::Dense { in_dim, out_dim: in_dim, act: Activation::Gelu },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim, out_dim, act: Activation::None },
                &[h],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        g
    }

    /// Frozen trunk shared by every seed; trainable adapter+head per seed.
    fn adapter_variant(tenant_seed: u64, in_dim: usize, out_dim: usize) -> ModelGraph {
        let mut frozen_rng = seeded_rng(500);
        let mut rng = seeded_rng(tenant_seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [in_dim]);
        let trunk = g
            .add_layer(
                "trunk",
                LayerKind::Dense { in_dim, out_dim: in_dim, act: Activation::Gelu },
                &[inp],
                true,
                ParamInit::Seeded(&mut frozen_rng),
            )
            .unwrap();
        let ad = g
            .add_layer(
                "adapter",
                LayerKind::Adapter { dim: in_dim, bottleneck: 4 },
                &[trunk],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        let o = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim, out_dim, act: Activation::None },
                &[ad],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        g
    }

    fn solo_forward(g: &ModelGraph, record: &[f32]) -> Vec<f32> {
        let inp = g.input_ids()[0];
        let t = Tensor::from_vec(
            g.shape(inp).with_batch(1),
            record.to_vec(),
        )
        .unwrap();
        let mut bi = BatchInputs::new();
        bi.insert(inp, t);
        let fwd = forward(g, &bi, false).unwrap();
        fwd.output(g.outputs()[0]).data().to_vec()
    }

    fn cfg(max_batch: usize, max_delay_us: u64) -> ServingConfig {
        ServingConfig { max_batch, max_delay_us, ..ServingConfig::default() }
    }

    #[test]
    fn concurrent_predictions_are_bit_identical_to_solo() {
        let g = model(7, 32, 5);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("default", g.clone()).unwrap();
        let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg(8, 20_000)));

        let mut rng = seeded_rng(99);
        let records: Vec<Vec<f32>> = (0..16)
            .map(|_| (0..32).map(|_| rng.gen_f32() * 2.0 - 1.0).collect())
            .collect();

        let handles: Vec<_> = records
            .iter()
            .cloned()
            .map(|r| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.predict("default", r).expect("prediction succeeds"))
            })
            .collect();
        let outputs: Vec<PredictOutput> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        let mut saw_real_batch = false;
        for (r, out) in records.iter().zip(&outputs) {
            assert_eq!(out.values, solo_forward(&g, r), "batched != solo");
            assert_eq!(out.version, 1);
            assert_eq!(out.model_id, "default");
            saw_real_batch |= out.batch_size > 1;
        }
        // With a 20ms door and 16 concurrent submitters, at least one
        // batch must have fused multiple records.
        assert!(saw_real_batch, "batching never fused any requests");
    }

    /// Three tenants on one base submitting concurrently: every answer is
    /// bit-identical to solo serving of that tenant's full variant, and at
    /// least one batch shares the trunk across tenants.
    #[test]
    fn cross_tenant_batches_share_trunk_and_stay_bit_identical() {
        let variants: Vec<ModelGraph> =
            (0..3).map(|i| adapter_variant(700 + i, 16, 4)).collect();
        let registry = Arc::new(ModelRegistry::new());
        for (i, g) in variants.iter().enumerate() {
            registry.publish(&format!("user-{i}"), g.clone()).unwrap();
        }
        let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg(16, 20_000)));

        let mut rng = seeded_rng(321);
        let jobs: Vec<(usize, Vec<f32>)> = (0..12)
            .map(|j| (j % 3, (0..16).map(|_| rng.gen_f32() * 2.0 - 1.0).collect()))
            .collect();
        let handles: Vec<_> = jobs
            .iter()
            .cloned()
            .map(|(t, r)| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    b.predict(&format!("user-{t}"), r).expect("prediction succeeds")
                })
            })
            .collect();
        let outputs: Vec<PredictOutput> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        let mut saw_shared_trunk = false;
        for ((t, r), out) in jobs.iter().zip(&outputs) {
            assert_eq!(
                out.values,
                solo_forward(&variants[*t], r),
                "tenant {t}: shared-trunk result != solo serving"
            );
            assert_eq!(out.model_id, format!("user-{t}"));
            saw_shared_trunk |= out.trunk_batch > out.batch_size;
        }
        assert!(saw_shared_trunk, "no batch ever shared a trunk across tenants");
    }

    #[test]
    fn predict_validates_shape_and_missing_model() {
        let registry = Arc::new(ModelRegistry::new());
        let batcher = MicroBatcher::start(Arc::clone(&registry), &cfg(4, 100));
        assert!(matches!(
            batcher.predict("nobody", vec![0.0; 4]),
            Err(PredictError::UnknownModel(_))
        ));
        registry.publish("m", model(1, 6, 2)).unwrap();
        assert!(matches!(
            batcher.predict("m", vec![0.0; 4]),
            Err(PredictError::BadShape { got: 4, want: 6 })
        ));
        let out = batcher.predict("m", vec![0.5; 6]).unwrap();
        assert_eq!(out.values.len(), 2);
    }

    /// A hot swap that changes the input shape while requests sit in the
    /// queue: each request must be answered by the exact model it was
    /// validated against, even when both versions share one batch window.
    #[test]
    fn hot_swap_mid_batch_answers_each_request_with_its_pinned_model() {
        let g1 = model(31, 6, 2);
        let g2 = model(32, 9, 3);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", g1.clone()).unwrap();
        // A long door so both requests land in the same batch window.
        let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg(8, 300_000)));

        let r1 = vec![0.25f32; 6];
        let b1 = Arc::clone(&batcher);
        let rec1 = r1.clone();
        let h1 = std::thread::spawn(move || b1.predict("m", rec1));
        // Wait until the first request is queued (validated against v1),
        // then swap to a model with a different input shape and submit a
        // second request validated against v2.
        while batcher.inner.state.lock().unwrap().queue.len() < 1 {
            std::thread::yield_now();
        }
        registry.publish("m", g2.clone()).unwrap();
        let r2 = vec![-0.5f32; 9];
        let b2 = Arc::clone(&batcher);
        let rec2 = r2.clone();
        let h2 = std::thread::spawn(move || b2.predict("m", rec2));

        let o1 = h1.join().unwrap().expect("v1 request must survive the swap");
        let o2 = h2.join().unwrap().expect("v2 request must succeed");
        assert_eq!(o1.version, 1);
        assert_eq!(o1.values, solo_forward(&g1, &r1));
        assert_eq!(o2.version, 2);
        assert_eq!(o2.values, solo_forward(&g2, &r2));
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", model(2, 8, 3)).unwrap();
        // A wide-open door: requests would sit for 10s without the drain.
        let batcher = Arc::new(MicroBatcher::start(Arc::clone(&registry), &cfg(64, 10_000_000)));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.predict("m", vec![i as f32; 8]))
            })
            .collect();
        // Give the submitters a moment to enqueue, then drain.
        while batcher.inner.state.lock().unwrap().queue.len() < 4 {
            std::thread::yield_now();
        }
        batcher.inner.state.lock().unwrap().shutdown = true;
        batcher.inner.cv.notify_all();
        for h in handles {
            assert!(h.join().unwrap().is_ok(), "drained request must be answered");
        }
    }
}
