//! The serving front-end: accept loop, bounded connection queue, handler
//! threads, request routing, load shedding, and graceful drain.
//!
//! Threading model (all `std`):
//!
//! * one **accept thread** owns the `TcpListener`. Accepted connections
//!   go into a bounded queue; when the queue is full the accept thread
//!   itself answers `503` + `Retry-After` (load shedding costs one small
//!   write, never a handler slot);
//! * `handler_threads` **handler threads** pop connections, read one
//!   request each (with a read timeout), route it, and always write a
//!   response before closing — no connection is dropped silently;
//! * predictions flow through the shared [`MicroBatcher`], so concurrent
//!   requests fuse into batched forwards.
//!
//! Graceful drain ([`Server::shutdown`]): stop accepting, answer every
//! queued connection, flush the batcher, join all threads.

use crate::batcher::{MicroBatcher, PredictError};
use crate::http::{self, Limits, ReadError, Request, Response};
use crate::registry::{ModelRegistry, RegistryError};
use nautilus_core::config::{ObservabilityConfig, ServingConfig};
use nautilus_util::json::Json;
use nautilus_util::{eventlog, telemetry};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Always-on serving statistics (plain atomics, independent of whether
/// the telemetry layer is enabled).
#[derive(Debug, Default)]
struct ServerStats {
    requests: AtomicU64,
    predictions: AtomicU64,
    shed: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    /// Successful predictions per tenant (reported under
    /// `/stats.tenants`; kept out of [`ServerStatsSnapshot`] so the
    /// snapshot stays `Copy`).
    per_tenant: Mutex<std::collections::BTreeMap<String, u64>>,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Requests that reached a handler (all endpoints).
    pub requests: u64,
    /// Successful predictions.
    pub predictions: u64,
    /// Connections shed with `503` at the accept queue.
    pub shed: u64,
    /// Requests answered with a 4xx.
    pub client_errors: u64,
    /// Requests answered with a 5xx.
    pub server_errors: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    batcher: MicroBatcher,
    limits: Limits,
    request_timeout: Duration,
    queue_limit: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    stop: AtomicBool,
    stats: ServerStats,
    obs: ObservabilityConfig,
    /// Set by the watchdog while any rolling-window SLO is breached;
    /// `/healthz` reports `degraded` (503) while it holds.
    degraded: AtomicBool,
    /// Human-readable descriptions of the currently breached SLOs
    /// (empty when healthy); written by the watchdog, read by `/healthz`.
    breaches: Mutex<Vec<String>>,
}

/// A running inference server bound to a loopback port.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
    watchdog_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:0` (or `127.0.0.1:port`) and starts the accept,
    /// handler, and batcher threads, with default observability (metric
    /// recording on, watchdog sampling, no SLOs enforced).
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: &ServingConfig,
        port: u16,
    ) -> std::io::Result<Server> {
        Self::start_with(registry, cfg, &ObservabilityConfig::default(), port)
    }

    /// [`Server::start`] with an explicit observability plane: metric
    /// recording, event-log destination, and the health watchdog's tick,
    /// window, and SLO thresholds all come from `obs`.
    pub fn start_with(
        registry: Arc<ModelRegistry>,
        cfg: &ServingConfig,
        obs: &ObservabilityConfig,
        port: u16,
    ) -> std::io::Result<Server> {
        if obs.metrics {
            telemetry::enable_metrics();
        }
        let level = eventlog::Level::parse(&obs.log_level).unwrap_or(eventlog::Level::Info);
        match obs.log.as_deref() {
            Some("stderr") | Some("-") => eventlog::init_stderr(level),
            Some(path) => eventlog::init_file(std::path::Path::new(path), level)?,
            None => {
                eventlog::init_from_env();
            }
        }

        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            batcher: MicroBatcher::start(Arc::clone(&registry), cfg),
            registry,
            limits: Limits { max_head_bytes: 8 * 1024, max_body_bytes: cfg.max_body_bytes },
            request_timeout: Duration::from_millis(cfg.request_timeout_ms.max(1)),
            queue_limit: cfg.queue_limit.max(1),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: ServerStats::default(),
            obs: obs.clone(),
            degraded: AtomicBool::new(false),
            breaches: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("nautilus-serve-accept".into())
            .spawn(move || accept_loop(listener, &accept_shared))?;

        let handler_threads = (0..cfg.handler_threads.max(1))
            .map(|i| {
                let h_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nautilus-serve-h{i}"))
                    .spawn(move || handler_loop(&h_shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let watchdog_thread = if obs.watchdog_tick_ms > 0 {
            let w_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("nautilus-serve-watchdog".into())
                    .spawn(move || watchdog_loop(&w_shared))?,
            )
        } else {
            None
        };

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            handler_threads,
            watchdog_thread,
        })
    }

    /// The bound address (`127.0.0.1:port`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from (publish here to hot-swap).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Current counter values.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Graceful drain: stop accepting, answer everything already queued,
    /// flush the batcher, join every thread. Returns the final stats.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.drain();
        self.shared.stats.snapshot()
    }

    fn drain(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Handlers drain the queue, then exit on (stop && empty).
        self.shared.cv.notify_all();
        for h in self.handler_threads.drain(..) {
            let _ = h.join();
        }
        // The watchdog notices `stop` within one tick.
        if let Some(h) = self.watchdog_thread.take() {
            let _ = h.join();
        }
        // MicroBatcher::drop flushes pending predictions; nothing is
        // enqueued anymore because all handlers have exited.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.handler_threads.is_empty() || self.accept_thread.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            // The wake-up connection (and any racer) is dropped after the
            // queue handoff stops; queued connections still get answered.
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut q = shared.queue.lock().expect("server queue");
        if q.len() >= shared.queue_limit {
            drop(q);
            shed(stream, shared);
            continue;
        }
        q.push_back(stream);
        if telemetry::metrics_enabled() {
            telemetry::SERVE_CONN_QUEUE_DEPTH.set(q.len() as i64);
        }
        drop(q);
        shared.cv.notify_one();
    }
}

/// Pushes `v` into a rolling window of at most `cap` samples.
fn push_window<T>(w: &mut VecDeque<T>, cap: usize, v: T) {
    if w.len() >= cap {
        w.pop_front();
    }
    w.push_back(v);
}

/// The health watchdog: every `watchdog_tick_ms` it samples the
/// connection and batcher queue depths (publishing them as gauges), the
/// shed counter, and the `serve.batch_us` histogram into rolling windows
/// of `watchdog_window` ticks, then evaluates the configured SLOs over
/// those windows. `/healthz` flips to `degraded` while any SLO is
/// breached; because the window is a rolling max/delta, health recovers
/// one clean window after the signal subsides.
fn watchdog_loop(shared: &Shared) {
    let obs = &shared.obs;
    let tick = Duration::from_millis(obs.watchdog_tick_ms.max(1));
    let window = obs.watchdog_window.max(1);
    let mut depths: VecDeque<usize> = VecDeque::with_capacity(window);
    let mut sheds: VecDeque<u64> = VecDeque::with_capacity(window + 1);
    let mut hists: VecDeque<[u64; telemetry::HIST_BUCKETS]> =
        VecDeque::with_capacity(window + 1);
    sheds.push_back(shared.stats.shed.load(Ordering::Relaxed));
    hists.push_back(telemetry::SERVE_BATCH_US.bucket_counts());
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(tick);

        let conn_depth = shared.queue.lock().expect("server queue").len();
        let batch_depth = shared.batcher.queue_depth();
        if telemetry::metrics_enabled() {
            telemetry::SERVE_CONN_QUEUE_DEPTH.set(conn_depth as i64);
            telemetry::SERVE_BATCH_QUEUE_DEPTH.set(batch_depth as i64);
        }
        push_window(&mut depths, window, conn_depth + batch_depth);
        // Cumulative signals keep window+1 snapshots so back-front spans
        // exactly `window` ticks.
        push_window(&mut sheds, window + 1, shared.stats.shed.load(Ordering::Relaxed));
        push_window(&mut hists, window + 1, telemetry::SERVE_BATCH_US.bucket_counts());

        let mut breaches = Vec::new();
        if obs.slo_queue_depth > 0 {
            let worst = depths.iter().copied().max().unwrap_or(0);
            if worst > obs.slo_queue_depth {
                breaches
                    .push(format!("queue depth {worst} > slo {}", obs.slo_queue_depth));
            }
        }
        if obs.slo_shed_per_window > 0 && sheds.len() >= 2 {
            let shed = sheds.back().unwrap() - sheds.front().unwrap();
            if shed > obs.slo_shed_per_window {
                breaches.push(format!(
                    "shed {shed}/window > slo {}",
                    obs.slo_shed_per_window
                ));
            }
        }
        if obs.slo_batch_p99_us > 0 && hists.len() >= 2 {
            let newest = hists.back().unwrap();
            let oldest = hists.front().unwrap();
            let mut delta = [0u64; telemetry::HIST_BUCKETS];
            for (d, (n, o)) in delta.iter_mut().zip(newest.iter().zip(oldest.iter())) {
                *d = n.saturating_sub(*o);
            }
            let p99 = telemetry::Histogram::quantile_from_counts(
                &delta,
                telemetry::SERVE_BATCH_US.max(),
                0.99,
            );
            if p99 > obs.slo_batch_p99_us {
                breaches
                    .push(format!("batch p99 {p99}us > slo {}us", obs.slo_batch_p99_us));
            }
        }

        let was = shared.degraded.swap(!breaches.is_empty(), Ordering::Relaxed);
        if !breaches.is_empty() && !was {
            eventlog::warn(
                "serve.slo_breach",
                &[("detail", eventlog::Value::Str(&breaches.join("; ")))],
            );
        } else if breaches.is_empty() && was {
            eventlog::info("serve.slo_recover", &[]);
        }
        *shared.breaches.lock().expect("breach list") = breaches;
    }
}

/// Answers an over-capacity connection with `503` + `Retry-After` from the
/// accept thread (bounded work: one small write plus a bounded drain).
fn shed(stream: TcpStream, shared: &Shared) {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    telemetry::SERVE_SHED.add(1);
    eventlog::warn(
        "serve.shed",
        &[("queue_limit", eventlog::Value::U64(shared.queue_limit as u64))],
    );
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = Response::error(503, "server overloaded").with_header("Retry-After", "1");
    finish(stream, &resp);
}

/// Sends the response and closes the connection without racing the
/// client: unread request bytes left in the receive buffer at close time
/// make the kernel RST the connection, which can destroy the response
/// before the client reads it. So after sending we half-close and drain
/// (bounded) until the client's own close acknowledges receipt.
fn finish(stream: TcpStream, resp: &Response) {
    crate::http::finish_connection(stream, resp);
}

fn handler_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("server queue");
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.cv.wait(q).expect("server queue wait");
            }
        };
        handle_connection(stream, shared);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.request_timeout));
    let _ = stream.set_write_timeout(Some(shared.request_timeout));
    let response = match http::read_request(&mut stream, &shared.limits) {
        Ok(req) => route(&req, shared),
        Err(ReadError::Parse(e)) => Response::error(e.status(), "malformed request"),
        Err(ReadError::Timeout) => Response::error(408, "request timed out"),
        // Nothing arrived and the peer is gone; no response possible.
        Err(ReadError::Disconnected) => return,
    };
    match response.status {
        400..=499 => shared.stats.client_errors.fetch_add(1, Ordering::Relaxed),
        500..=599 => shared.stats.server_errors.fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
    finish(stream, &response);
}

/// The tenant a request addresses: the path suffix (`/predict/<id>`,
/// `/model/<id>`) wins, then the `X-Model-Id` header, then the
/// registry's default tenant.
fn tenant_of<'a>(req: &'a Request, prefix: &str, shared: &'a Shared) -> &'a str {
    if let Some(rest) = req.path.strip_prefix(prefix) {
        if let Some(id) = rest.strip_prefix('/') {
            if !id.is_empty() {
                return id;
            }
        }
    }
    match req.header("x-model-id") {
        Some(id) if !id.is_empty() => id,
        _ => shared.registry.default_id().as_str(),
    }
}

/// Bounded-cardinality endpoint label for the `serve.request_us` and
/// `serve.errors` metric families: known routes by name, anything else
/// `"other"` (raw paths must never become label values).
fn endpoint_of(req: &Request) -> &'static str {
    let p = req.path.as_str();
    if p == "/predict" || p.starts_with("/predict/") {
        "predict"
    } else if p == "/healthz" {
        "healthz"
    } else if p == "/stats" {
        "stats"
    } else if p == "/metrics" {
        "metrics"
    } else if p == "/models" {
        "models"
    } else if p == "/model" || p.starts_with("/model/") {
        "model"
    } else {
        "other"
    }
}

fn route(req: &Request, shared: &Shared) -> Response {
    let _sp = telemetry::span("serve", "serve.request");
    let t0 = Instant::now();
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    telemetry::SERVE_REQUESTS.add(1);
    let resp = match (req.method.as_str(), req.path.as_str()) {
        ("POST", p) if p == "/predict" || p.starts_with("/predict/") => {
            predict(req, tenant_of(req, "/predict", shared), shared)
        }
        ("GET", "/healthz") => health(shared),
        ("GET", "/metrics") => Response::text(
            200,
            "text/plain; version=0.0.4",
            telemetry::prometheus_text(),
        ),
        ("GET", "/stats") => stats(shared),
        ("GET", "/models") => {
            let rows = shared
                .registry
                .list()
                .into_iter()
                .map(|m| {
                    Json::obj([
                        ("id", Json::Str(m.id.as_str().into())),
                        ("version", Json::Int(m.version as i128)),
                        ("resident", Json::Bool(m.resident)),
                        ("delta_bytes", Json::Int(m.delta_bytes as i128)),
                    ])
                })
                .collect();
            Response::json(200, &Json::obj([("models", Json::Arr(rows))]))
        }
        ("GET", p) if p == "/model" || p.starts_with("/model/") => {
            model_meta(tenant_of(req, "/model", shared), shared)
        }
        ("POST" | "GET", _) => Response::error(404, "unknown endpoint"),
        _ => Response::error(405, "method not allowed"),
    };
    let us = t0.elapsed().as_micros() as u64;
    telemetry::SERVE_REQUEST_US.record(us);
    if telemetry::metrics_enabled() {
        let endpoint = endpoint_of(req);
        if endpoint == "predict" {
            let tenant = tenant_of(req, "/predict", shared);
            telemetry::histogram_with(
                "serve.request_us",
                &[("tenant", tenant), ("endpoint", endpoint)],
            )
            .record(us);
        } else {
            telemetry::histogram_with("serve.request_us", &[("endpoint", endpoint)])
                .record(us);
        }
        if resp.status >= 400 {
            let status = resp.status.to_string();
            telemetry::counter_with(
                "serve.errors",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .add(1);
        }
    }
    resp
}

/// `GET /healthz`: per-component readiness (registry residency vs cap,
/// delta-store writability, queue depths vs the shed limit, worker-pool
/// liveness, and the watchdog's SLO verdict) aggregated into one
/// `ok|degraded` status — `200` when ok, `503` when degraded. The
/// pre-observability top-level keys are kept for compatibility.
fn health(shared: &Shared) -> Response {
    let s = shared.registry.stats();
    let max_resident = shared.registry.max_resident();
    let registry_ok = s.resident_variants <= max_resident;
    let store_writable = shared.registry.store_writable();
    let store_ok = store_writable.unwrap_or(true);
    let conn_depth = shared.queue.lock().expect("server queue").len();
    let batch_depth = shared.batcher.queue_depth();
    let batcher_ok = conn_depth + batch_depth <= shared.queue_limit;
    let workers = nautilus_util::pool::num_threads();
    let pool_ok = workers > 0;
    let breaches = shared.breaches.lock().expect("breach list").clone();
    let watchdog_ok = breaches.is_empty() && !shared.degraded.load(Ordering::Relaxed);
    let ok = registry_ok && store_ok && batcher_ok && pool_ok && watchdog_ok;
    let verdict = |ok: bool| Json::Str(if ok { "ok" } else { "degraded" }.into());
    let body = Json::obj([
        ("status", verdict(ok)),
        ("resident_variants", Json::Int(s.resident_variants as i128)),
        ("evicted_variants", Json::Int(s.evicted_variants as i128)),
        (
            "components",
            Json::obj([
                (
                    "registry",
                    Json::obj([
                        ("status", verdict(registry_ok)),
                        ("resident_variants", Json::Int(s.resident_variants as i128)),
                        (
                            "max_resident_variants",
                            if max_resident == usize::MAX {
                                Json::Null
                            } else {
                                Json::Int(max_resident as i128)
                            },
                        ),
                    ]),
                ),
                (
                    "delta_store",
                    Json::obj([
                        ("status", verdict(store_ok)),
                        ("configured", Json::Bool(store_writable.is_some())),
                        ("writable", store_writable.map_or(Json::Null, Json::Bool)),
                    ]),
                ),
                (
                    "batcher",
                    Json::obj([
                        ("status", verdict(batcher_ok)),
                        ("conn_queue_depth", Json::Int(conn_depth as i128)),
                        ("batch_queue_depth", Json::Int(batch_depth as i128)),
                        ("queue_limit", Json::Int(shared.queue_limit as i128)),
                    ]),
                ),
                (
                    "pool",
                    Json::obj([
                        ("status", verdict(pool_ok)),
                        ("workers", Json::Int(workers as i128)),
                    ]),
                ),
                (
                    "watchdog",
                    Json::obj([
                        ("status", verdict(watchdog_ok)),
                        ("enabled", Json::Bool(shared.obs.watchdog_tick_ms > 0)),
                        ("breaches", Json::Arr(breaches.into_iter().map(Json::Str).collect())),
                    ]),
                ),
            ]),
        ),
    ]);
    Response::json(if ok { 200 } else { 503 }, &body)
}

/// Live summary of one latency histogram for the `/stats` block.
fn latency_json(h: &'static telemetry::Histogram) -> Json {
    let s = h.summarize();
    Json::obj([
        ("count", Json::Int(s.count as i128)),
        ("p50_us", Json::Int(s.p50 as i128)),
        ("p95_us", Json::Int(s.p95 as i128)),
        ("p99_us", Json::Int(s.p99 as i128)),
        ("max_us", Json::Int(s.max as i128)),
    ])
}

/// `GET /stats`: request counters, per-tenant prediction counts, live
/// latency summaries, and the registry's residency/dedup accounting.
fn stats(shared: &Shared) -> Response {
    let s = shared.stats.snapshot();
    let r = shared.registry.stats();
    let tenants: Vec<Json> = shared
        .stats
        .per_tenant
        .lock()
        .expect("per-tenant stats lock")
        .iter()
        .map(|(id, n)| {
            Json::obj([
                ("id", Json::Str(id.clone())),
                ("predictions", Json::Int(*n as i128)),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::obj([
            ("requests", Json::Int(s.requests as i128)),
            ("predictions", Json::Int(s.predictions as i128)),
            ("shed", Json::Int(s.shed as i128)),
            ("client_errors", Json::Int(s.client_errors as i128)),
            ("server_errors", Json::Int(s.server_errors as i128)),
            ("tenants", Json::Arr(tenants)),
            (
                "latency",
                Json::obj([
                    ("request_us", latency_json(&telemetry::SERVE_REQUEST_US)),
                    ("batch_us", latency_json(&telemetry::SERVE_BATCH_US)),
                ]),
            ),
            (
                "registry",
                Json::obj([
                    ("resident_variants", Json::Int(r.resident_variants as i128)),
                    ("evicted_variants", Json::Int(r.evicted_variants as i128)),
                    ("bases", Json::Int(r.bases as i128)),
                    ("bytes_logical", Json::Int(r.bytes_logical as i128)),
                    ("bytes_stored", Json::Int(r.bytes_stored as i128)),
                    ("unique_delta_entries", Json::Int(r.unique_delta_entries as i128)),
                    ("dedup_ratio", Json::Num(r.dedup_ratio())),
                    ("evictions", Json::Int(r.evictions as i128)),
                    ("fault_ins", Json::Int(r.fault_ins as i128)),
                ]),
            ),
        ]),
    )
}

/// `GET /model[/<id>]`: shape and residency metadata for one tenant.
fn model_meta(id: &str, shared: &Shared) -> Response {
    match shared.registry.get(id) {
        Ok(a) => Response::json(
            200,
            &Json::obj([
                ("id", Json::Str(a.id.as_str().into())),
                ("version", Json::Int(a.version as i128)),
                (
                    "input_shape",
                    Json::Arr(a.record_shape.0.iter().map(|&d| Json::Int(d as i128)).collect()),
                ),
                ("input_elements", Json::Int(a.record_elems as i128)),
                ("delta_bytes", Json::Int(a.delta_bytes as i128)),
                ("base_sig", Json::Str(format!("{:016x}", a.base.sig))),
            ]),
        ),
        Err(RegistryError::UnknownModel(_)) => Response::error(404, "no model published"),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// `POST /predict[/<id>]` with body `{"inputs": [f32...]}` →
/// `{"model_id", "model_version", "batch_size", "trunk_batch",
/// "outputs": [f32...]}`.
fn predict(req: &Request, id: &str, shared: &Shared) -> Response {
    let parsed: Result<Json, _> = nautilus_util::json::from_slice(&req.body);
    let Ok(body) = parsed else {
        return Response::error(400, "body is not valid JSON");
    };
    let Some(inputs) = body.get("inputs").and_then(|v| v.as_arr()) else {
        return Response::error(422, "missing 'inputs' array");
    };
    let mut record = Vec::with_capacity(inputs.len());
    for v in inputs {
        match v.as_f64() {
            Some(x) => record.push(x as f32),
            None => return Response::error(422, "'inputs' must be numbers"),
        }
    }
    match shared.batcher.predict(id, record) {
        Ok(out) => {
            shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
            *shared
                .stats
                .per_tenant
                .lock()
                .expect("per-tenant stats lock")
                .entry(out.model_id.clone())
                .or_insert(0) += 1;
            Response::json(
                200,
                &Json::obj([
                    ("model_id", Json::Str(out.model_id)),
                    ("model_version", Json::Int(out.version as i128)),
                    ("batch_size", Json::Int(out.batch_size as i128)),
                    ("trunk_batch", Json::Int(out.trunk_batch as i128)),
                    (
                        "outputs",
                        Json::Arr(out.values.iter().map(|&x| Json::Num(x as f64)).collect()),
                    ),
                ]),
            )
        }
        Err(PredictError::UnknownModel(id)) => {
            Response::error(404, &format!("no model published under '{id}'"))
        }
        Err(e @ PredictError::BadShape { .. }) => Response::error(422, &e.to_string()),
        Err(PredictError::Shutdown) => Response::error(503, "server draining"),
        Err(PredictError::Registry(m)) => Response::error(500, &m),
        Err(PredictError::Exec(m)) => Response::error(500, &m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautilus_dnn::graph::ParamInit;
    use nautilus_dnn::layer::{Activation, LayerKind};
    use nautilus_dnn::ModelGraph;
    use nautilus_tensor::init::seeded_rng;

    fn model(seed: u64) -> ModelGraph {
        let mut rng = seeded_rng(seed);
        let mut g = ModelGraph::new();
        let inp = g.add_input("in", [8]);
        let o = g
            .add_layer(
                "head",
                LayerKind::Dense { in_dim: 8, out_dim: 3, act: Activation::None },
                &[inp],
                false,
                ParamInit::Seeded(&mut rng),
            )
            .unwrap();
        g.add_output(o).unwrap();
        g
    }

    fn start(cfg: &ServingConfig) -> (Server, String) {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("default", model(5)).unwrap();
        let server = Server::start(registry, cfg, 0).unwrap();
        let addr = server.addr().to_string();
        (server, addr)
    }

    fn get(addr: &str, path: &str) -> (u16, Json) {
        let (status, body) =
            http::request(addr, "GET", path, None, Duration::from_secs(5)).unwrap();
        (status, nautilus_util::json::from_slice(&body).unwrap())
    }

    #[test]
    fn serves_health_model_and_predictions() {
        let (server, addr) = start(&ServingConfig::default());

        let (status, health) = get(&addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(health.get("resident_variants").and_then(|v| v.as_u64()), Some(1));

        let (status, meta) = get(&addr, "/model");
        assert_eq!(status, 200);
        assert_eq!(meta.get("input_elements").and_then(|v| v.as_u64()), Some(8));
        // The explicit-tenant path reaches the same variant.
        let (status, meta) = get(&addr, "/model/default");
        assert_eq!(status, 200);
        assert_eq!(meta.get("version").and_then(|v| v.as_u64()), Some(1));
        let (status, _) = get(&addr, "/model/nobody");
        assert_eq!(status, 404);

        let body = br#"{"inputs": [1, 0.5, -1, 2, 0, 0.25, -0.5, 3]}"#;
        let (status, raw) =
            http::request(&addr, "POST", "/predict", Some(body), Duration::from_secs(5))
                .unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
        let out: Json = nautilus_util::json::from_slice(&raw).unwrap();
        assert_eq!(out.get("outputs").and_then(|v| v.as_arr()).map(|a| a.len()), Some(3));
        assert_eq!(out.get("model_id").and_then(|v| v.as_str()), Some("default"));

        let (status, listing) = get(&addr, "/models");
        assert_eq!(status, 200);
        assert_eq!(listing.get("models").and_then(|v| v.as_arr()).map(|a| a.len()), Some(1));

        let (status, st) = get(&addr, "/stats");
        assert_eq!(status, 200);
        let reg = st.get("registry").expect("registry block in /stats");
        assert_eq!(reg.get("resident_variants").and_then(|v| v.as_u64()), Some(1));
        assert!(reg.get("dedup_ratio").and_then(|v| v.as_f64()).is_some());
        let tenants = st.get("tenants").and_then(|v| v.as_arr()).expect("tenants");
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].get("predictions").and_then(|v| v.as_u64()), Some(1));

        let (status, _) = get(&addr, "/nope");
        assert_eq!(status, 404);

        let stats = server.shutdown();
        assert!(stats.requests >= 4);
        assert_eq!(stats.predictions, 1);
    }

    /// Two tenants behind one endpoint: path routing reaches the right
    /// variant, and an unknown tenant is a 404, not a 503.
    #[test]
    fn routes_predictions_per_tenant() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("alice", model(11)).unwrap();
        registry.publish("bob", model(22)).unwrap();
        let server = Server::start(registry, &ServingConfig::default(), 0).unwrap();
        let addr = server.addr().to_string();

        let body = br#"{"inputs": [1, 2, 3, 4, 5, 6, 7, 8]}"#;
        let mut outs = Vec::new();
        for tenant in ["alice", "bob"] {
            let (status, raw) = http::request(
                &addr,
                "POST",
                &format!("/predict/{tenant}"),
                Some(body),
                Duration::from_secs(5),
            )
            .unwrap();
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&raw));
            let out: Json = nautilus_util::json::from_slice(&raw).unwrap();
            assert_eq!(out.get("model_id").and_then(|v| v.as_str()), Some(tenant));
            outs.push(out.get("outputs").unwrap().to_string());
        }
        assert_ne!(outs[0], outs[1], "different tenants must answer differently");

        let (status, raw) =
            http::request(&addr, "POST", "/predict/nobody", Some(body), Duration::from_secs(5))
                .unwrap();
        assert_eq!(status, 404, "{}", String::from_utf8_lossy(&raw));

        let stats = server.shutdown();
        assert_eq!(stats.predictions, 2);
        assert_eq!(stats.client_errors, 1);
    }

    #[test]
    fn rejects_bad_bodies_and_shapes() {
        let (server, addr) = start(&ServingConfig::default());
        let cases: [(&[u8], u16); 3] = [
            (b"not json", 400),
            (br#"{"wrong": 1}"#, 422),
            (br#"{"inputs": [1, 2]}"#, 422),
        ];
        for (body, want) in cases {
            let (status, _) =
                http::request(&addr, "POST", "/predict", Some(body), Duration::from_secs(5))
                    .unwrap();
            assert_eq!(status, want, "body {:?}", String::from_utf8_lossy(body));
        }
        let stats = server.shutdown();
        assert_eq!(stats.client_errors, 3);
        assert_eq!(stats.predictions, 0);
    }
}
