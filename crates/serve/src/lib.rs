#![warn(missing_docs)]

//! Online multi-tenant inference serving for trained Nautilus models.
//!
//! The paper's workflow ends at model selection; this crate closes the
//! loop for the system reproduction: trained models are published into a
//! tenant-keyed [`registry::ModelRegistry`] and served over a minimal
//! HTTP/1.1 loopback endpoint ([`server::Server`]). Variants that share
//! a frozen base (adapter fine-tunes of one backbone) keep the base
//! weights resident **once** and carry only their per-tenant deltas.
//!
//! Design points:
//!
//! * **Many models, one base** — [`registry::ModelRegistry::publish`]
//!   splits each incoming graph into its frozen base (deduplicated by
//!   [`nautilus_dnn::delta::base_signature`] and held in one `Arc` across
//!   all variants) and a trainable delta (adapters + heads), with
//!   structurally identical delta tensors interned once. Per-tenant hot
//!   swap stays atomic: each request pins the `Arc` of the artifact it
//!   started with.
//! * **Cold-variant eviction** — with a configured
//!   [`deltastore::DeltaStore`], least-recently-used deltas spill to a
//!   content-addressed on-disk store (shared blobs, per-tenant
//!   manifests) and fault back in transparently on the next request.
//! * **Cross-tenant micro-batching** — concurrent predictions fuse into
//!   one batch ([`batcher::MicroBatcher`]); records whose variants share
//!   a base run **one** trunk forward over the union batch
//!   ([`nautilus_dnn::exec::forward_batch_shared_trunk`]) with per-tenant
//!   suffix passes — the serving dual of the paper's FUSE optimization.
//!   Results stay **bit-identical** to solo single-model execution (the
//!   kernel-dispatch pinning in
//!   `nautilus_tensor::ops::with_batch_invariant_dispatch` guarantees the
//!   same kernels run regardless of batch composition).
//! * **Tenant routing** — `POST /predict/<id>` (or `X-Model-Id` header),
//!   `GET /model/<id>`, `GET /models`; `/stats` reports per-tenant
//!   prediction counts and the registry's logical-vs-stored dedup ratio.
//! * **Bounded queues + load shedding** — the accept queue is bounded
//!   (`SystemConfig::serving.queue_limit`); overload is answered with
//!   `503` + `Retry-After` instead of unbounded buffering, and slow
//!   clients get `408` instead of pinning a handler thread.
//! * **Serving telemetry** — spans `serve.request`/`serve.batch`/
//!   `serve.evict`/`serve.fault_in`, counters `serve.requests`/
//!   `serve.shed`/`serve.batches`/`serve.evictions`/`serve.fault_ins`/
//!   `serve.trunk_shared_records`, and log2-bucketed latency histograms
//!   `serve.request_us`/`serve.batch_us` (also recorded per tenant and
//!   endpoint as bounded-cardinality labeled families).
//! * **Observability plane** — `GET /metrics` renders every counter,
//!   gauge, and histogram in Prometheus text format; `GET /healthz`
//!   aggregates per-component readiness (registry residency vs cap,
//!   delta-store writability, queue depths, pool liveness, watchdog
//!   verdict) into `ok`/`degraded` (`200`/`503`); a watchdog thread
//!   samples queue depths, shed rate, and batch-latency p99 into rolling
//!   windows and degrades health while an
//!   [`nautilus_core::config::ObservabilityConfig`] SLO is breached;
//!   discrete transitions (publish, evict, fault-in, shed, SLO breach)
//!   go to the structured `nautilus_util::eventlog`.
//!
//! Everything is `std`-only: the HTTP parser, JSON codec, thread pool,
//! and telemetry all come from in-tree substrates.

pub mod batcher;
pub mod deltastore;
pub mod http;
pub mod registry;
pub mod server;

pub use batcher::{MicroBatcher, PredictError, PredictOutput};
pub use deltastore::{DeltaStore, StoreError, StorePut};
pub use http::{Request, Response};
pub use registry::{
    BaseModel, ModelArtifact, ModelId, ModelRegistry, ModelSummary, PublishOptions, RegistryError,
    RegistryStats,
};
pub use server::{Server, ServerStatsSnapshot};
