#![warn(missing_docs)]

//! Online inference serving for trained Nautilus models.
//!
//! The paper's workflow ends at model selection; this crate closes the
//! loop for the system reproduction: the best trained model a
//! [`ModelSelection`](nautilus_core::session::ModelSelection) exports is
//! published to a [`registry::ModelRegistry`] and served over a minimal
//! HTTP/1.1 loopback endpoint ([`server::Server`]).
//!
//! Design points:
//!
//! * **Versioned hot swap** — [`registry::ModelRegistry::publish`]
//!   atomically replaces the current model without dropping in-flight
//!   requests: each request pins the `Arc` of the artifact it started
//!   with, so a swap mid-request is torn nowhere.
//! * **Dynamic micro-batching** — concurrent predictions are fused into
//!   one `forward_batch` call ([`batcher::MicroBatcher`]), amortizing
//!   per-forward overhead. Batched results are **bit-identical** to
//!   single-request execution (the kernel-dispatch pinning in
//!   `nautilus_tensor::ops::with_batch_invariant_dispatch` guarantees the
//!   same kernels run regardless of batch size).
//! * **Bounded queues + load shedding** — the accept queue is bounded
//!   (`SystemConfig::serving.queue_limit`); overload is answered with
//!   `503` + `Retry-After` instead of unbounded buffering, and slow
//!   clients get `408` instead of pinning a handler thread.
//! * **Serving telemetry** — spans `serve.request`/`serve.batch`,
//!   counters `serve.requests`/`serve.shed`/`serve.batches`/
//!   `serve.batch_size`, and log2-bucketed latency histograms
//!   `serve.request_us`/`serve.batch_us` (p50/p95/p99 in the telemetry
//!   summary table and Chrome trace export).
//!
//! Everything is `std`-only: the HTTP parser, JSON codec, thread pool,
//! and telemetry all come from in-tree substrates.

pub mod batcher;
pub mod http;
pub mod registry;
pub mod server;

pub use batcher::{MicroBatcher, PredictOutput};
pub use http::{Request, Response};
pub use registry::{ModelArtifact, ModelRegistry, RegistryError};
pub use server::{Server, ServerStatsSnapshot};
