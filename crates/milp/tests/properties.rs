//! Property tests: the MILP solver against brute force on random instances,
//! run under the in-tree shrinking harness with fixed seeds.

use nautilus_milp::{solve, BbOptions, LinExpr, MilpStatus, Problem, Sense};
use nautilus_util::prop::{prop_check, Gen};
use nautilus_util::rng::{Rng, StdRng};
use nautilus_util::{prop_assert, prop_assert_eq};

const CASES: u32 = 48;

/// A random small binary program: n vars, up to m random ≤/≥ constraints.
#[derive(Debug, Clone)]
struct RandomBip {
    n: usize,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, bool, f64)>, // (coefs, is_le, rhs)
}

struct BipGen;

impl Gen for BipGen {
    type Value = RandomBip;

    fn generate(&self, rng: &mut StdRng) -> RandomBip {
        let n = rng.gen_range(2usize..=6);
        let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0f64..5.0)).collect();
        let n_rows = rng.gen_range(1usize..4);
        let rows = (0..n_rows)
            .map(|_| {
                let coefs: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
                (coefs, rng.gen_bool(0.5), rng.gen_range(-4.0f64..6.0))
            })
            .collect();
        RandomBip { n, obj, rows }
    }

    fn shrink(&self, bip: &RandomBip) -> Vec<RandomBip> {
        let mut out = Vec::new();
        // Drop constraints one at a time.
        if bip.rows.len() > 1 {
            for i in 0..bip.rows.len() {
                let mut smaller = bip.clone();
                smaller.rows.remove(i);
                out.push(smaller);
            }
        }
        // Zero one objective coefficient.
        if let Some(i) = bip.obj.iter().position(|&c| c != 0.0) {
            let mut smaller = bip.clone();
            smaller.obj[i] = 0.0;
            out.push(smaller);
        }
        out
    }
}

fn bip_gen() -> BipGen {
    BipGen
}

fn build(bip: &RandomBip) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = (0..bip.n).map(|i| p.binary(format!("x{i}"))).collect();
    for (coefs, is_le, rhs) in &bip.rows {
        let mut e = LinExpr::new();
        for (v, &c) in vars.iter().zip(coefs) {
            e.add_term(*v, c);
        }
        p.add_constraint(e, if *is_le { Sense::Le } else { Sense::Ge }, *rhs);
    }
    let mut obj = LinExpr::new();
    for (v, &c) in vars.iter().zip(&bip.obj) {
        obj.add_term(*v, c);
    }
    p.minimize(obj);
    p
}

fn brute_force(bip: &RandomBip) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << bip.n) {
        let x: Vec<f64> =
            (0..bip.n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        let feasible = bip.rows.iter().all(|(coefs, is_le, rhs)| {
            let lhs: f64 = coefs.iter().zip(&x).map(|(c, v)| c * v).sum();
            if *is_le {
                lhs <= rhs + 1e-9
            } else {
                lhs >= rhs - 1e-9
            }
        });
        if feasible {
            let obj: f64 = bip.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            if best.is_none_or(|b| obj < b) {
                best = Some(obj);
            }
        }
    }
    best
}

fn build_continuous(bip: &RandomBip) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> =
        (0..bip.n).map(|i| p.continuous(format!("x{i}"), 0.0, 10.0)).collect();
    for (coefs, is_le, rhs) in &bip.rows {
        let mut e = LinExpr::new();
        for (v, &c) in vars.iter().zip(coefs) {
            e.add_term(*v, c);
        }
        p.add_constraint(e, if *is_le { Sense::Le } else { Sense::Ge }, *rhs);
    }
    let mut obj = LinExpr::new();
    for (v, &c) in vars.iter().zip(&bip.obj) {
        obj.add_term(*v, c);
    }
    p.minimize(obj);
    p
}

/// A BIP plus 32 random sample points in `[0, 10]^6`.
struct BipWithSamplesGen;

impl Gen for BipWithSamplesGen {
    type Value = (RandomBip, Vec<Vec<f64>>);

    fn generate(&self, rng: &mut StdRng) -> (RandomBip, Vec<Vec<f64>>) {
        let bip = BipGen.generate(rng);
        let samples = (0..32)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0f64..10.0)).collect())
            .collect();
        (bip, samples)
    }

    fn shrink(&self, (bip, samples): &(RandomBip, Vec<Vec<f64>>)) -> Vec<Self::Value> {
        BipGen.shrink(bip).into_iter().map(|b| (b, samples.clone())).collect()
    }
}

/// The simplex optimum is feasible and no random feasible point beats it.
#[test]
fn lp_optimum_dominates_sampled_feasible_points() {
    prop_check(0x311F_0001, CASES, &BipWithSamplesGen, |(bip, samples)| {
        let p = build_continuous(bip);
        let out = nautilus_milp::simplex::solve_lp(&p, None);
        match out.status {
            nautilus_milp::LpStatus::Optimal => {
                prop_assert!(
                    p.is_feasible(&out.x, 1e-5),
                    "optimum not feasible: {:?}",
                    out.x
                );
                for s in samples {
                    let x: Vec<f64> = s[..bip.n].to_vec();
                    if p.is_feasible(&x, 1e-9) {
                        let val: f64 = bip.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                        prop_assert!(
                            out.objective <= val + 1e-5,
                            "sampled point {x:?} (obj {val}) beats 'optimum' {}",
                            out.objective
                        );
                    }
                }
            }
            nautilus_milp::LpStatus::Infeasible => {
                // No sampled point may be feasible either.
                for s in samples {
                    let x: Vec<f64> = s[..bip.n].to_vec();
                    prop_assert!(
                        !p.is_feasible(&x, 1e-9),
                        "solver said infeasible but {x:?} is feasible"
                    );
                }
            }
            other => prop_assert!(false, "unexpected LP status {other:?}"),
        }
        Ok(())
    });
}

#[test]
fn milp_matches_brute_force() {
    prop_check(0x311F_0002, CASES, &bip_gen(), |bip| {
        let p = build(bip);
        let sol = solve(&p, &BbOptions::default());
        match brute_force(bip) {
            None => prop_assert_eq!(sol.status, MilpStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status, MilpStatus::Optimal);
                prop_assert!(
                    (sol.objective - best).abs() < 1e-5,
                    "solver {} vs brute force {}",
                    sol.objective,
                    best
                );
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
            }
        }
        Ok(())
    });
}

#[test]
fn incumbent_never_beats_relaxation() {
    prop_check(0x311F_0003, CASES, &bip_gen(), |bip| {
        let p = build(bip);
        let lp = nautilus_milp::simplex::solve_lp(&p, None);
        let sol = solve(&p, &BbOptions::default());
        if sol.status == MilpStatus::Optimal && lp.status == nautilus_milp::LpStatus::Optimal {
            prop_assert!(
                sol.objective >= lp.objective - 1e-5,
                "MILP {} below LP bound {}",
                sol.objective,
                lp.objective
            );
        }
        Ok(())
    });
}
