//! Property tests: the MILP solver against brute force on random instances.

use nautilus_milp::{solve, BbOptions, LinExpr, MilpStatus, Problem, Sense};
use proptest::prelude::*;

/// A random small binary program: n vars, up to m random ≤/≥ constraints.
#[derive(Debug, Clone)]
struct RandomBip {
    n: usize,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, bool, f64)>, // (coefs, is_le, rhs)
}

fn bip_strategy() -> impl Strategy<Value = RandomBip> {
    (2..=6usize)
        .prop_flat_map(|n| {
            let obj = proptest::collection::vec(-5.0f64..5.0, n);
            let row = (
                proptest::collection::vec(-3.0f64..3.0, n),
                any::<bool>(),
                -4.0f64..6.0,
            );
            let rows = proptest::collection::vec(row, 1..4);
            (Just(n), obj, rows)
        })
        .prop_map(|(n, obj, rows)| RandomBip { n, obj, rows })
}

fn build(bip: &RandomBip) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = (0..bip.n).map(|i| p.binary(format!("x{i}"))).collect();
    for (coefs, is_le, rhs) in &bip.rows {
        let mut e = LinExpr::new();
        for (v, &c) in vars.iter().zip(coefs) {
            e.add_term(*v, c);
        }
        p.add_constraint(e, if *is_le { Sense::Le } else { Sense::Ge }, *rhs);
    }
    let mut obj = LinExpr::new();
    for (v, &c) in vars.iter().zip(&bip.obj) {
        obj.add_term(*v, c);
    }
    p.minimize(obj);
    p
}

fn brute_force(bip: &RandomBip) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << bip.n) {
        let x: Vec<f64> =
            (0..bip.n).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        let feasible = bip.rows.iter().all(|(coefs, is_le, rhs)| {
            let lhs: f64 = coefs.iter().zip(&x).map(|(c, v)| c * v).sum();
            if *is_le {
                lhs <= rhs + 1e-9
            } else {
                lhs >= rhs - 1e-9
            }
        });
        if feasible {
            let obj: f64 = bip.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            if best.is_none_or(|b| obj < b) {
                best = Some(obj);
            }
        }
    }
    best
}

/// A random small LP over continuous variables in `[0, 10]`.
fn lp_strategy() -> impl Strategy<Value = RandomBip> {
    bip_strategy()
}

fn build_continuous(bip: &RandomBip) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> =
        (0..bip.n).map(|i| p.continuous(format!("x{i}"), 0.0, 10.0)).collect();
    for (coefs, is_le, rhs) in &bip.rows {
        let mut e = LinExpr::new();
        for (v, &c) in vars.iter().zip(coefs) {
            e.add_term(*v, c);
        }
        p.add_constraint(e, if *is_le { Sense::Le } else { Sense::Ge }, *rhs);
    }
    let mut obj = LinExpr::new();
    for (v, &c) in vars.iter().zip(&bip.obj) {
        obj.add_term(*v, c);
    }
    p.minimize(obj);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simplex optimum is feasible and no random feasible point beats it.
    #[test]
    fn lp_optimum_dominates_sampled_feasible_points(
        bip in lp_strategy(),
        samples in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 6), 32),
    ) {
        let p = build_continuous(&bip);
        let out = nautilus_milp::simplex::solve_lp(&p, None);
        match out.status {
            nautilus_milp::LpStatus::Optimal => {
                prop_assert!(p.is_feasible(&out.x, 1e-5),
                    "optimum not feasible: {:?}", out.x);
                for s in &samples {
                    let x: Vec<f64> = s[..bip.n].to_vec();
                    if p.is_feasible(&x, 1e-9) {
                        let val: f64 = bip.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                        prop_assert!(out.objective <= val + 1e-5,
                            "sampled point {x:?} (obj {val}) beats 'optimum' {}",
                            out.objective);
                    }
                }
            }
            nautilus_milp::LpStatus::Infeasible => {
                // No sampled point may be feasible either.
                for s in &samples {
                    let x: Vec<f64> = s[..bip.n].to_vec();
                    prop_assert!(!p.is_feasible(&x, 1e-9),
                        "solver said infeasible but {x:?} is feasible");
                }
            }
            other => prop_assert!(false, "unexpected LP status {other:?}"),
        }
    }

    #[test]
    fn milp_matches_brute_force(bip in bip_strategy()) {
        let p = build(&bip);
        let sol = solve(&p, &BbOptions::default());
        match brute_force(&bip) {
            None => prop_assert_eq!(sol.status, MilpStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status, MilpStatus::Optimal);
                prop_assert!((sol.objective - best).abs() < 1e-5,
                    "solver {} vs brute force {}", sol.objective, best);
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
            }
        }
    }

    #[test]
    fn incumbent_never_beats_relaxation(bip in bip_strategy()) {
        let p = build(&bip);
        let lp = nautilus_milp::simplex::solve_lp(&p, None);
        let sol = solve(&p, &BbOptions::default());
        if sol.status == MilpStatus::Optimal
            && lp.status == nautilus_milp::LpStatus::Optimal {
            prop_assert!(sol.objective >= lp.objective - 1e-5,
                "MILP {} below LP bound {}", sol.objective, lp.objective);
        }
    }
}
