//! Linear expressions over problem variables.

use std::collections::BTreeMap;

/// Opaque handle to a variable in a [`crate::Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of the variable in the owning problem.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A linear expression `Σ coef_i · x_i + constant`.
///
/// Coefficients are kept in a `BTreeMap` keyed by variable so repeated
/// `add_term` calls merge, which keeps constraint matrices canonical and makes
/// tests deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    pub(crate) terms: BTreeMap<VarId, f64>,
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-variable expression `coef · x`.
    pub fn term(var: VarId, coef: f64) -> Self {
        let mut e = Self::new();
        e.add_term(var, coef);
        e
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// Adds `coef · x` to the expression (merging with an existing term).
    pub fn add_term(&mut self, var: VarId, coef: f64) -> &mut Self {
        if coef != 0.0 {
            let e = self.terms.entry(var).or_insert(0.0);
            *e += coef;
            if *e == 0.0 {
                self.terms.remove(&var);
            }
        }
        self
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Adds another expression to this one.
    pub fn add_expr(&mut self, other: &LinExpr) -> &mut Self {
        for (&v, &c) in &other.terms {
            self.add_term(v, c);
        }
        self.constant += other.constant;
        self
    }

    /// Builder-style variant of [`LinExpr::add_term`].
    pub fn plus(mut self, var: VarId, coef: f64) -> Self {
        self.add_term(var, coef);
        self
    }

    /// Number of nonzero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Evaluates the expression for a full assignment vector.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.index()]).sum::<f64>()
    }
}

/// Sums an iterator of expressions.
pub fn sum(exprs: impl IntoIterator<Item = LinExpr>) -> LinExpr {
    let mut out = LinExpr::new();
    for e in exprs {
        out.add_expr(&e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_merge_and_cancel() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::term(x, 2.0);
        e.add_term(y, 1.0);
        e.add_term(x, 3.0);
        assert_eq!(e.num_terms(), 2);
        e.add_term(x, -5.0);
        assert_eq!(e.num_terms(), 1);
    }

    #[test]
    fn eval_includes_constant() {
        let x = VarId(0);
        let e = LinExpr::term(x, 2.0).plus(VarId(1), -1.0);
        let mut e = e;
        e.add_constant(10.0);
        assert_eq!(e.eval(&[3.0, 4.0]), 10.0 + 6.0 - 4.0);
    }

    #[test]
    fn sum_of_exprs() {
        let x = VarId(0);
        let s = sum(vec![LinExpr::term(x, 1.0), LinExpr::term(x, 2.0), LinExpr::constant(5.0)]);
        assert_eq!(s.eval(&[1.0]), 8.0);
    }
}
