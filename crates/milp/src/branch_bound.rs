//! Best-first branch-and-bound over the LP relaxation.

use crate::problem::{Problem, VarKind};
use crate::simplex::{solve_lp, LpStatus};
use nautilus_util::telemetry;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Integer feasibility tolerance.
const INT_TOL: f64 = 1e-6;

/// Solver options.
#[derive(Debug, Clone)]
pub struct BbOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Accept an incumbent whose gap to the best bound is below this
    /// (absolute) value.
    pub abs_gap: f64,
}

impl Default for BbOptions {
    fn default() -> Self {
        BbOptions {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
            abs_gap: 1e-6,
        }
    }
}

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// A feasible incumbent was found but the node/time budget ran out
    /// before optimality was proven.
    Feasible,
    /// No feasible assignment exists.
    Infeasible,
    /// The relaxation is unbounded (ill-posed model).
    Unbounded,
    /// The budget ran out before any incumbent was found.
    NoSolution,
}

/// MILP solve result.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Solve status.
    pub status: MilpStatus,
    /// Objective of the incumbent (minimization).
    pub objective: f64,
    /// Variable assignment of the incumbent, integer variables rounded
    /// exactly to integers.
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
    /// Total solve wall time.
    pub elapsed: Duration,
    /// Best lower bound proven (equals `objective` when `Optimal`).
    pub best_bound: f64,
}

struct Node {
    bound: f64,
    bounds: Vec<(f64, f64)>,
    depth: u32,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the *smallest* LP bound first
        // (best-first search), with deeper nodes breaking ties (dive bias).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

fn most_fractional(problem: &Problem, x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (j, def) in problem.vars.iter().enumerate() {
        if def.kind != VarKind::Integer {
            continue;
        }
        let frac = (x[j] - x[j].round()).abs();
        if frac > INT_TOL {
            let dist_to_half = (x[j] - x[j].floor() - 0.5).abs();
            if best.is_none_or(|(_, d)| dist_to_half < d) {
                best = Some((j, dist_to_half));
            }
        }
    }
    best
}

/// Rounds integer variables of `x` and checks full feasibility; returns the
/// rounded assignment and objective if it is feasible (a cheap primal
/// heuristic that often closes structured instances at the root).
fn try_round(problem: &Problem, x: &[f64]) -> Option<(Vec<f64>, f64)> {
    let mut r = x.to_vec();
    for (j, def) in problem.vars.iter().enumerate() {
        if def.kind == VarKind::Integer {
            r[j] = r[j].round();
        }
    }
    if problem.is_feasible(&r, 1e-6) {
        let obj = problem.objective.eval(&r);
        Some((r, obj))
    } else {
        None
    }
}

/// Solves the problem with branch-and-bound. Always returns the best
/// incumbent found; see [`MilpStatus`] for how to interpret it.
pub fn solve(problem: &Problem, options: &BbOptions) -> MilpSolution {
    let _sp = telemetry::span("milp", "milp.solve");
    let solution = solve_inner(problem, options);
    telemetry::BB_NODES.add(solution.nodes);
    solution
}

fn solve_inner(problem: &Problem, options: &BbOptions) -> MilpSolution {
    let start = Instant::now();
    let root_bounds: Vec<(f64, f64)> = problem.vars.iter().map(|v| (v.lb, v.ub)).collect();

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut nodes_explored = 0u64;
    let mut heap = BinaryHeap::new();
    heap.push(Node { bound: f64::NEG_INFINITY, bounds: root_bounds, depth: 0 });
    let mut best_bound = f64::NEG_INFINITY;
    let mut exhausted = true;

    while let Some(node) = heap.pop() {
        if nodes_explored >= options.max_nodes || start.elapsed() > options.time_limit {
            exhausted = false;
            break;
        }
        nodes_explored += 1;

        // Prune against the incumbent before paying for the LP.
        if let Some((_, inc_obj)) = &incumbent {
            if node.bound >= *inc_obj - options.abs_gap {
                continue;
            }
        }

        let lp = solve_lp(problem, Some(&node.bounds));
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                return MilpSolution {
                    status: MilpStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: vec![],
                    nodes: nodes_explored,
                    elapsed: start.elapsed(),
                    best_bound: f64::NEG_INFINITY,
                };
            }
            LpStatus::IterLimit => {
                // Treat as unexplorable; conservatively keep the node's bound.
                exhausted = false;
                continue;
            }
            LpStatus::Optimal => {}
        }
        if node.depth == 0 {
            best_bound = lp.objective;
        }
        if let Some((_, inc_obj)) = &incumbent {
            if lp.objective >= *inc_obj - options.abs_gap {
                continue;
            }
        }

        match most_fractional(problem, &lp.x) {
            None => {
                // Integral: new incumbent.
                let mut vals = lp.x.clone();
                for (j, def) in problem.vars.iter().enumerate() {
                    if def.kind == VarKind::Integer {
                        vals[j] = vals[j].round();
                    }
                }
                let obj = problem.objective.eval(&vals);
                if incumbent.as_ref().is_none_or(|(_, o)| obj < *o) {
                    incumbent = Some((vals, obj));
                }
            }
            Some((j, _)) => {
                // Primal heuristic at every node: rounded LP point.
                if let Some((vals, obj)) = try_round(problem, &lp.x) {
                    if incumbent.as_ref().is_none_or(|(_, o)| obj < *o) {
                        incumbent = Some((vals, obj));
                    }
                }
                let xj = lp.x[j];
                let mut down = node.bounds.clone();
                down[j].1 = xj.floor();
                let mut up = node.bounds;
                up[j].0 = xj.ceil();
                heap.push(Node { bound: lp.objective, bounds: down, depth: node.depth + 1 });
                heap.push(Node { bound: lp.objective, bounds: up, depth: node.depth + 1 });
            }
        }
    }

    let elapsed = start.elapsed();
    match incumbent {
        Some((values, objective)) => {
            let proven = exhausted
                || heap
                    .peek()
                    .is_none_or(|n| n.bound >= objective - options.abs_gap);
            MilpSolution {
                status: if proven { MilpStatus::Optimal } else { MilpStatus::Feasible },
                objective,
                values,
                nodes: nodes_explored,
                elapsed,
                best_bound: if proven { objective } else { best_bound },
            }
        }
        None => MilpSolution {
            status: if exhausted { MilpStatus::Infeasible } else { MilpStatus::NoSolution },
            objective: f64::INFINITY,
            values: vec![],
            nodes: nodes_explored,
            elapsed,
            best_bound,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{Problem, Sense};

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (Problem, Vec<crate::VarId>) {
        let mut p = Problem::new();
        let vars: Vec<_> =
            (0..values.len()).map(|i| p.binary(format!("item{i}"))).collect();
        let mut w = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            w.add_term(v, weights[i]);
            obj.add_term(v, -values[i]); // maximize value == minimize -value
        }
        p.add_constraint(w, Sense::Le, cap);
        p.minimize(obj);
        (p, vars)
    }

    fn brute_force_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let mut w = 0.0;
            let mut v = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap && v > best {
                best = v;
            }
        }
        best
    }

    #[test]
    fn knapsack_matches_brute_force() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 5.0];
        let weights = [3.0, 4.0, 2.0, 3.0, 1.0, 2.0];
        for cap in [0.0, 1.0, 4.0, 6.0, 9.0, 15.0] {
            let (p, _) = knapsack(&values, &weights, cap);
            let sol = solve(&p, &BbOptions::default());
            assert_eq!(sol.status, MilpStatus::Optimal, "cap {cap}");
            let expected = brute_force_knapsack(&values, &weights, cap);
            assert!(
                (-sol.objective - expected).abs() < 1e-6,
                "cap {cap}: got {} expected {expected}",
                -sol.objective
            );
            assert!(p.is_feasible(&sol.values, 1e-6));
        }
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 4.0);
        p.minimize(LinExpr::term(x, -2.0));
        let sol = solve(&p, &BbOptions::default());
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective + 8.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_problem() {
        // x + y = 1 with x = y (both binary) has no integer solution when we
        // also require x + y = 1 and x - y = 0 simultaneously... actually the
        // LP relaxation x=y=0.5 is feasible; integrality makes it infeasible.
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.binary("y");
        p.eq(LinExpr::term(x, 1.0).plus(y, 1.0), 1.0);
        p.eq(LinExpr::term(x, 1.0).plus(y, -1.0), 0.0);
        p.minimize(LinExpr::term(x, 1.0));
        let sol = solve(&p, &BbOptions::default());
        assert_eq!(sol.status, MilpStatus::Infeasible);
    }

    #[test]
    fn integer_rounding_not_assumed() {
        // min x1 + x2 s.t. 2x1 + 2x2 >= 3, binaries: LP gives 0.75 total,
        // integer optimum needs both = 1 or one... 2x >= 3 -> x1+x2 >= 1.5,
        // so integral optimum is 2.
        let mut p = Problem::new();
        let x = p.binary("x1");
        let y = p.binary("x2");
        p.ge(LinExpr::term(x, 2.0).plus(y, 2.0), 3.0);
        p.minimize(LinExpr::term(x, 1.0).plus(y, 1.0));
        let sol = solve(&p, &BbOptions::default());
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min -y - 0.5 x, y binary, x in [0, 10], x <= 4 + 6y.
        // y=1: x<=10, obj = -1 - 5 = -6. Optimal.
        let mut p = Problem::new();
        let y = p.binary("y");
        let x = p.continuous("x", 0.0, 10.0);
        let mut c = LinExpr::term(x, 1.0);
        c.add_term(y, -6.0);
        p.le(c, 4.0);
        p.minimize(LinExpr::term(y, -1.0).plus(x, -0.5));
        let sol = solve(&p, &BbOptions::default());
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective + 6.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_degrades_to_feasible_or_none() {
        let values: Vec<f64> = (0..14).map(|i| ((i * 37) % 11 + 1) as f64).collect();
        let weights: Vec<f64> = (0..14).map(|i| ((i * 53) % 7 + 1) as f64).collect();
        let (p, _) = knapsack(&values, &weights, 20.0);
        let sol = solve(&p, &BbOptions { max_nodes: 3, ..Default::default() });
        assert!(matches!(
            sol.status,
            MilpStatus::Feasible | MilpStatus::Optimal | MilpStatus::NoSolution
        ));
        if matches!(sol.status, MilpStatus::Feasible | MilpStatus::Optimal) {
            assert!(p.is_feasible(&sol.values, 1e-6));
        }
    }
}
