//! Dense two-phase primal simplex with bounded variables.
//!
//! Solves `min c·x  s.t.  A·x {≤,≥,=} b,  lb ≤ x ≤ ub` where upper bounds may
//! be infinite. Upper bounds are handled natively (nonbasic variables may sit
//! at either bound and "bound flips" replace pivots when a variable hits its
//! opposite bound), which keeps the tableau at one row per constraint — the
//! Nautilus MILPs consist almost entirely of binaries in `[0, 1]`, so this
//! halves the work versus encoding bounds as rows.
//!
//! The implementation keeps the full updated tableau (`B⁻¹A`) plus an
//! incrementally maintained reduced-cost row. Dantzig pricing is used with a
//! periodic switch to Bland's rule for anti-cycling, plus an iteration limit
//! as a final backstop.

use crate::problem::{Problem, Sense};
use nautilus_util::telemetry;

const EPS: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;

/// Result status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit (treat as a failed solve).
    IterLimit,
}

/// LP solve outcome: status, objective value, and primal assignment for the
/// problem's structural variables.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Solve status; `objective`/`x` are meaningful only for `Optimal`.
    pub status: LpStatus,
    /// Objective value at the returned point.
    pub objective: f64,
    /// Values of the structural variables, in definition order.
    pub x: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColStatus {
    Basic(usize),
    Lower,
    Upper,
}

struct Tableau {
    m: usize,
    n: usize,
    /// Row-major `m × n` updated constraint matrix.
    a: Vec<f64>,
    /// Current values of basic variables, one per row.
    xb: Vec<f64>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// Status of every column.
    status: Vec<ColStatus>,
    /// Upper bound of every column (post-shift; lower bounds are 0).
    ub: Vec<f64>,
    /// Reduced-cost row for the current phase.
    d: Vec<f64>,
    iterations: u64,
}

impl Tableau {
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Value of column `j` under the current basis/bound statuses.
    fn col_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::Basic(i) => self.xb[i],
            ColStatus::Lower => 0.0,
            ColStatus::Upper => self.ub[j],
        }
    }

    /// Recomputes the reduced-cost row `d = c − c_B·B⁻¹A` for phase costs `c`.
    fn reset_costs(&mut self, c: &[f64]) {
        self.d.copy_from_slice(c);
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            for j in 0..self.n {
                self.d[j] -= cb * self.at(i, j);
            }
        }
        for i in 0..self.m {
            self.d[self.basis[i]] = 0.0;
        }
    }

    /// Runs simplex iterations for the current cost row until optimal,
    /// unbounded, or the iteration budget runs out.
    fn optimize(&mut self, max_iters: u64) -> LpStatus {
        let mut stall = 0u64;
        loop {
            self.iterations += 1;
            telemetry::SIMPLEX_ITERATIONS.add(1);
            if self.iterations > max_iters {
                return LpStatus::IterLimit;
            }
            let use_bland = stall > (self.m as u64 + self.n as u64) * 2;
            let Some((j, dir)) = self.choose_entering(use_bland) else {
                return LpStatus::Optimal;
            };

            // Ratio test: t is how far x_j moves from its current bound.
            let mut t = self.ub[j]; // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for i in 0..self.m {
                let rate = self.at(i, j) * dir; // x_Bi changes at −rate
                if rate > PIVOT_TOL {
                    let lim = self.xb[i] / rate;
                    if lim < t - EPS || (lim < t + EPS && leave.is_none()) {
                        t = lim.max(0.0);
                        leave = Some((i, false));
                    }
                } else if rate < -PIVOT_TOL {
                    let ub_i = self.ub[self.basis[i]];
                    if ub_i.is_finite() {
                        let lim = (ub_i - self.xb[i]) / (-rate);
                        if lim < t - EPS || (lim < t + EPS && leave.is_none()) {
                            t = lim.max(0.0);
                            leave = Some((i, true));
                        }
                    }
                }
            }
            if t.is_infinite() {
                return LpStatus::Unbounded;
            }
            stall = if t > EPS { 0 } else { stall + 1 };

            match leave {
                None => {
                    // Bound flip: x_j travels all the way to its other bound.
                    for i in 0..self.m {
                        let delta = self.at(i, j) * dir * t;
                        self.xb[i] -= delta;
                    }
                    self.status[j] = match self.status[j] {
                        ColStatus::Lower => ColStatus::Upper,
                        ColStatus::Upper => ColStatus::Lower,
                        ColStatus::Basic(_) => unreachable!("entering var was nonbasic"),
                    };
                }
                Some((r, leaves_at_upper)) => {
                    // Update basic values, then pivot.
                    for i in 0..self.m {
                        if i != r {
                            self.xb[i] -= self.at(i, j) * dir * t;
                        }
                    }
                    let entering_value = if dir > 0.0 { t } else { self.ub[j] - t };
                    let old = self.basis[r];
                    self.status[old] = if leaves_at_upper {
                        ColStatus::Upper
                    } else {
                        ColStatus::Lower
                    };
                    self.basis[r] = j;
                    self.status[j] = ColStatus::Basic(r);
                    self.xb[r] = entering_value;
                    self.pivot(r, j);
                }
            }
        }
    }

    fn choose_entering(&self, bland: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.n {
            let dir = match self.status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::Lower => {
                    if self.d[j] >= -EPS {
                        continue;
                    }
                    1.0
                }
                ColStatus::Upper => {
                    if self.d[j] <= EPS {
                        continue;
                    }
                    -1.0
                }
            };
            // Columns pinned to zero (retired artificials) never enter.
            if self.ub[j] <= 0.0 {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = self.d[j].abs();
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.at(r, j);
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.a[r * self.n..(r + 1) * self.n] {
            *v *= inv;
        }
        let (before, rest) = self.a.split_at_mut(r * self.n);
        let (prow, after) = rest.split_at_mut(self.n);
        let eliminate = |row: &mut [f64]| {
            let f = row[j];
            if f.abs() > PIVOT_TOL {
                for (x, &p) in row.iter_mut().zip(prow.iter()) {
                    *x -= f * p;
                }
                row[j] = 0.0;
            }
        };
        for chunk in before.chunks_mut(self.n) {
            eliminate(chunk);
        }
        for chunk in after.chunks_mut(self.n) {
            eliminate(chunk);
        }
        // Cost row gets the same elimination.
        let f = self.d[j];
        if f.abs() > PIVOT_TOL {
            for (x, &p) in self.d.iter_mut().zip(prow.iter()) {
                *x -= f * p;
            }
            self.d[j] = 0.0;
        }
    }
}

/// Solves the LP relaxation of `problem` with the given per-variable bound
/// overrides (used by branch-and-bound); pass `None` to use the problem's own
/// bounds.
pub fn solve_lp(problem: &Problem, bounds: Option<&[(f64, f64)]>) -> LpOutcome {
    let n_struct = problem.vars.len();
    let m = problem.constraints.len();
    let var_bounds: Vec<(f64, f64)> = match bounds {
        Some(b) => b.to_vec(),
        None => problem.vars.iter().map(|v| (v.lb, v.ub)).collect(),
    };
    for &(lb, ub) in &var_bounds {
        if lb > ub + EPS {
            return LpOutcome { status: LpStatus::Infeasible, objective: 0.0, x: vec![] };
        }
    }

    // Shift variables so lower bounds are zero: x = lb + x'.
    let shifts: Vec<f64> = var_bounds.iter().map(|&(lb, _)| lb).collect();
    let ubs: Vec<f64> = var_bounds.iter().map(|&(lb, ub)| ub - lb).collect();

    // Count extra columns: one slack/surplus for Le/Ge, one artificial for Ge/Eq.
    let mut n_total = n_struct;
    let mut slack_col = vec![usize::MAX; m];
    let mut art_col = vec![usize::MAX; m];
    // Normalize rows so rhs ≥ 0, folding in expression constants and shifts.
    type Row = (Vec<(usize, f64)>, Sense, f64);
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in &problem.constraints {
        let mut coefs: Vec<(usize, f64)> = c.expr.iter().map(|(v, k)| (v.index(), k)).collect();
        let mut rhs = c.rhs - c.expr.constant;
        for &(j, k) in &coefs {
            rhs -= k * shifts[j];
        }
        let mut sense = c.sense;
        if rhs < 0.0 {
            rhs = -rhs;
            for (_, k) in &mut coefs {
                *k = -*k;
            }
            sense = match sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        rows.push((coefs, sense, rhs));
    }
    for (i, (_, sense, _)) in rows.iter().enumerate() {
        match sense {
            Sense::Le | Sense::Ge => {
                slack_col[i] = n_total;
                n_total += 1;
            }
            Sense::Eq => {}
        }
    }
    let mut needs_artificial = vec![false; m];
    for (i, (_, sense, _)) in rows.iter().enumerate() {
        if matches!(sense, Sense::Ge | Sense::Eq) {
            needs_artificial[i] = true;
            art_col[i] = n_total;
            n_total += 1;
        }
    }

    let mut tab = Tableau {
        m,
        n: n_total,
        a: vec![0.0; m * n_total],
        xb: vec![0.0; m],
        basis: vec![0; m],
        status: vec![ColStatus::Lower; n_total],
        ub: vec![f64::INFINITY; n_total],
        d: vec![0.0; n_total],
        iterations: 0,
    };
    for (j, &u) in ubs.iter().enumerate() {
        tab.ub[j] = u;
    }
    for (i, (coefs, sense, rhs)) in rows.iter().enumerate() {
        for &(j, k) in coefs {
            tab.a[i * n_total + j] += k;
        }
        match sense {
            Sense::Le => {
                tab.a[i * n_total + slack_col[i]] = 1.0;
                tab.basis[i] = slack_col[i];
            }
            Sense::Ge => {
                tab.a[i * n_total + slack_col[i]] = -1.0;
                tab.a[i * n_total + art_col[i]] = 1.0;
                tab.basis[i] = art_col[i];
            }
            Sense::Eq => {
                tab.a[i * n_total + art_col[i]] = 1.0;
                tab.basis[i] = art_col[i];
            }
        }
        tab.status[tab.basis[i]] = ColStatus::Basic(i);
        tab.xb[i] = *rhs;
    }

    let max_iters = 200 * (m as u64 + n_total as u64) + 1000;

    // Phase 1: drive artificials to zero.
    if needs_artificial.iter().any(|&b| b) {
        let mut c1 = vec![0.0; n_total];
        for (i, &need) in needs_artificial.iter().enumerate() {
            if need {
                c1[art_col[i]] = 1.0;
            }
        }
        tab.reset_costs(&c1);
        match tab.optimize(max_iters) {
            LpStatus::Optimal => {}
            LpStatus::IterLimit => {
                return LpOutcome { status: LpStatus::IterLimit, objective: 0.0, x: vec![] }
            }
            // Phase 1 objective is bounded below by 0, so Unbounded is impossible.
            LpStatus::Unbounded | LpStatus::Infeasible => unreachable!(),
        }
        let art_sum: f64 = (0..m)
            .filter(|&i| needs_artificial[i])
            .map(|i| tab.col_value(art_col[i]))
            .sum();
        if art_sum > 1e-6 {
            return LpOutcome { status: LpStatus::Infeasible, objective: 0.0, x: vec![] };
        }
        // Pin artificials to zero so they never re-enter.
        for (i, &need) in needs_artificial.iter().enumerate() {
            if need {
                tab.ub[art_col[i]] = 0.0;
            }
        }
    }

    // Phase 2: original objective on the shifted variables.
    let mut c2 = vec![0.0; n_total];
    for (v, k) in problem.objective.iter() {
        c2[v.index()] += k;
    }
    tab.reset_costs(&c2);
    let status = tab.optimize(max_iters);
    match status {
        LpStatus::Optimal => {}
        LpStatus::Unbounded => {
            return LpOutcome { status: LpStatus::Unbounded, objective: f64::NEG_INFINITY, x: vec![] }
        }
        LpStatus::IterLimit => {
            return LpOutcome { status: LpStatus::IterLimit, objective: 0.0, x: vec![] }
        }
        LpStatus::Infeasible => unreachable!("phase 2 starts feasible"),
    }

    let mut x = vec![0.0; n_struct];
    for (j, xv) in x.iter_mut().enumerate() {
        *xv = shifts[j] + tab.col_value(j);
    }
    let objective = problem.objective.eval(&x);
    LpOutcome { status: LpStatus::Optimal, objective, x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Problem;

    #[test]
    fn simple_le_lp() {
        // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 3.0);
        let y = p.continuous("y", 0.0, 2.0);
        p.le(LinExpr::term(x, 1.0).plus(y, 1.0), 4.0);
        p.minimize(LinExpr::term(x, -1.0).plus(y, -2.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - (-6.0)).abs() < 1e-6, "obj {}", out.objective);
        assert!((out.x[0] - 2.0).abs() < 1e-6);
        assert!((out.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y s.t. x + y >= 3, x - y = 1, 0 <= x,y <= 10 -> x=2, y=1.
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 10.0);
        let y = p.continuous("y", 0.0, 10.0);
        p.ge(LinExpr::term(x, 1.0).plus(y, 1.0), 3.0);
        p.eq(LinExpr::term(x, 1.0).plus(y, -1.0), 1.0);
        p.minimize(LinExpr::term(x, 1.0).plus(y, 1.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 3.0).abs() < 1e-6);
        assert!((out.x[0] - 2.0).abs() < 1e-6);
        assert!((out.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 1.0);
        p.ge(LinExpr::term(x, 1.0), 2.0);
        p.minimize(LinExpr::term(x, 1.0));
        assert_eq!(solve_lp(&p, None).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.ge(LinExpr::term(x, 1.0), 1.0);
        p.minimize(LinExpr::term(x, -1.0));
        assert_eq!(solve_lp(&p, None).status, LpStatus::Unbounded);
    }

    #[test]
    fn respects_upper_bounds_without_rows() {
        // min -x with x <= 2.5: optimum at the bound, no constraint rows at all.
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 2.5);
        p.minimize(LinExpr::term(x, -1.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.x[0] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y, x >= 1.5, y in [2, 5], x + y >= 4 -> x=2, y=2? No:
        // minimize sum with x>=1.5,y>=2: base 3.5 violates x+y>=4, need 0.5 more
        // on the cheaper margin — both cost 1, so optimum objective is 4.
        let mut p = Problem::new();
        let x = p.continuous("x", 1.5, 10.0);
        let y = p.continuous("y", 2.0, 5.0);
        p.ge(LinExpr::term(x, 1.0).plus(y, 1.0), 4.0);
        p.minimize(LinExpr::term(x, 1.0).plus(y, 1.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 4.0).abs() < 1e-6, "obj {}", out.objective);
    }

    #[test]
    fn bound_overrides_take_precedence() {
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 10.0);
        p.minimize(LinExpr::term(x, -1.0));
        let out = solve_lp(&p, Some(&[(0.0, 3.0)]));
        assert!((out.x[0] - 3.0).abs() < 1e-9);
        let inf = solve_lp(&p, Some(&[(4.0, 3.0)]));
        assert_eq!(inf.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = Problem::new();
        let x = p.continuous("x", 0.0, 1.0);
        let y = p.continuous("y", 0.0, 1.0);
        p.le(LinExpr::term(x, 1.0).plus(y, 1.0), 1.0);
        p.le(LinExpr::term(x, 2.0).plus(y, 2.0), 2.0);
        p.le(LinExpr::term(x, 1.0), 1.0);
        p.minimize(LinExpr::term(x, -1.0).plus(y, -1.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn equality_with_negative_rhs() {
        let mut p = Problem::new();
        let x = p.continuous("x", -5.0, 5.0);
        p.eq(LinExpr::term(x, 1.0), -3.0);
        p.minimize(LinExpr::term(x, 1.0));
        let out = solve_lp(&p, None);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.x[0] + 3.0).abs() < 1e-6);
    }
}
