//! Problem construction API.

use crate::expr::{LinExpr, VarId};

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Variable integrality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds (binaries are integers in `[0, 1]`).
    Integer,
}

/// A variable definition.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Debug name, surfaced in solver traces and tests.
    pub name: String,
    /// Lower bound.
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
    /// Integrality.
    pub kind: VarKind,
}

/// One linear constraint `expr (sense) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side; its constant is folded into `rhs` at solve time.
    pub expr: LinExpr,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization problem over continuous and integer variables.
///
/// Maximization callers negate their objective; the Nautilus planner always
/// minimizes training cost, so no convenience wrapper is provided.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Problem {
    /// An empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, 0.0, 1.0, VarKind::Integer)
    }

    /// Adds a continuous variable within `[lb, ub]`.
    pub fn continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name, lb, ub, VarKind::Continuous)
    }

    /// Adds a variable with explicit bounds and kind.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, kind: VarKind) -> VarId {
        assert!(lb <= ub, "variable bounds inverted: {lb} > {ub}");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef { name: name.into(), lb, ub, kind });
        id
    }

    /// Adds the constraint `expr (sense) rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) {
        self.constraints.push(Constraint { expr, sense, rhs });
    }

    /// Convenience: `expr ≤ rhs`.
    pub fn le(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Sense::Le, rhs);
    }

    /// Convenience: `expr ≥ rhs`.
    pub fn ge(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Sense::Ge, rhs);
    }

    /// Convenience: `expr = rhs`.
    pub fn eq(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Sense::Eq, rhs);
    }

    /// Sets the minimization objective.
    pub fn minimize(&mut self, objective: LinExpr) {
        self.objective = objective;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable definition lookup.
    pub fn var(&self, id: VarId) -> &VarDef {
        &self.vars[id.index()]
    }

    /// Checks a full assignment against every constraint and bound.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, def) in values.iter().zip(&self.vars) {
            if *v < def.lb - tol || *v > def.ub + tol {
                return false;
            }
            if def.kind == VarKind::Integer && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_check_feasibility() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.continuous("y", 0.0, 2.0);
        p.le(LinExpr::term(x, 1.0).plus(y, 1.0), 2.0);
        p.minimize(LinExpr::term(x, -1.0).plus(y, -1.0));
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 1.5], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[0.5, 0.0], 1e-9)); // fractional binary
        assert!(!p.is_feasible(&[0.0, 3.0], 1e-9)); // bound violation
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var(x).name, "x");
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new();
        p.continuous("bad", 1.0, 0.0);
    }
}
