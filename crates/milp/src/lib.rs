#![warn(missing_docs)]

//! Mixed-integer linear programming substrate.
//!
//! The paper solves its materialization optimization (Eq 8–10) with Gurobi;
//! this crate is the from-scratch replacement: a dense two-phase primal
//! simplex with bounded variables ([`simplex`]) and a best-first
//! branch-and-bound driver for binary/integer variables ([`branch_bound`]),
//! exposed through a small model-building API ([`problem`]).
//!
//! Scale expectations: the Nautilus planner produces instances with a few
//! hundred binary variables and a few hundred rows (candidate models are
//! grouped by identical graph structure first), which this solver handles in
//! well under a second. The branch-and-bound keeps the best incumbent found
//! and honors node limits, so callers always get a feasible answer when one
//! exists — matching how the planner degrades gracefully.

pub mod branch_bound;
pub mod expr;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve, BbOptions, MilpSolution, MilpStatus};
pub use expr::{LinExpr, VarId};
pub use problem::{Problem, Sense, VarKind};
pub use simplex::{LpOutcome, LpStatus};
